"""Admission control: what the service agrees to run, and under what caps.

Budgets are enforced *by the sim*, not by trusting the submitter: a
script runs under :meth:`repro.sim.Engine.run_budgeted` (event cap +
simulated-time horizon), campaigns are bounded in cell count and
per-cell duration at admission, and the seed can be pinned by policy so
a tenant cannot shop for a lucky stream.  ``ftshlint`` runs at
admission too — the service front door rejects the patterns the paper
says bring grids down, before they cost a single simulated second.

Rejections are typed (:class:`SandboxRejection` with a stable ``code``)
so the HTTP layer can map them to 4xx responses and tests can assert on
causes rather than message text.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..core.errors import BudgetExceeded, FtshSyntaxError
from ..core.compile import compilation_enabled, compile_cached
from ..core.parser import parse_cached
from ..lint.diagnostics import Severity
from ..lint.engine import LintConfig, lint_script
from ..parallel.executor import CellSpec
from ..sim.engine import Engine
from ..sim.rng import RandomStreams
from ..simruntime.registry import CommandRegistry
from ..simruntime.shell import SimFtsh
from .schemas import CampaignSubmission, ScriptOutcome, ScriptSubmission


@dataclass(frozen=True)
class SandboxPolicy:
    """Per-submission budgets; one policy governs a whole server.

    ``pinned_seed`` (when set) overwrites every submission's seed — the
    multi-tenant posture where results are comparable across tenants and
    nobody can fish for favourable randomness.  ``lint_warn_as_error``
    is the ``-W error`` admission gate.
    """

    max_script_bytes: int = 64 * 1024
    max_sim_seconds: float = 3600.0
    max_events: int = 2_000_000
    max_cells: int = 64
    wall_budget: float = 120.0
    pinned_seed: Optional[int] = None
    lint: bool = True
    lint_warn_as_error: bool = False


class SandboxRejection(Exception):
    """A submission the sandbox refused to run.

    ``code`` is stable: ``syntax``, ``lint``, ``budget``, ``unknown``
    (bad scenario/world/discipline/fault names) or ``invalid``.
    ``details`` carries structured context (e.g. lint diagnostics as
    GCC-style strings).
    """

    def __init__(self, code: str, message: str,
                 details: Optional[list[str]] = None) -> None:
        self.code = code
        self.details = list(details or [])
        super().__init__(message)


#: Simulated worlds a script may run against, by name.
SCRIPT_WORLDS = ("condor", "replica", "buffer")


# ---------------------------------------------------------------------------
# Admission
# ---------------------------------------------------------------------------

def admit_script(submission: ScriptSubmission,
                 policy: SandboxPolicy) -> ScriptSubmission:
    """Validate and normalize one script submission.

    Returns the (possibly rewritten) submission the job store should
    run: the sim window is clamped into the policy budget and the seed
    is pinned when the policy says so.  Raises
    :class:`SandboxRejection` otherwise.
    """
    if len(submission.script.encode()) > policy.max_script_bytes:
        raise SandboxRejection(
            "budget",
            f"script exceeds {policy.max_script_bytes} bytes",
        )
    if submission.world not in SCRIPT_WORLDS:
        raise SandboxRejection(
            "unknown",
            f"unknown world {submission.world!r} "
            f"(expected one of {', '.join(SCRIPT_WORLDS)})",
        )
    if submission.timeout is not None and submission.timeout <= 0:
        raise SandboxRejection("invalid", "timeout must be positive")
    window = submission.timeout
    if window is None or window > policy.max_sim_seconds:
        window = policy.max_sim_seconds

    try:
        script = parse_cached(submission.script)
    except (FtshSyntaxError, RecursionError) as exc:
        raise SandboxRejection("syntax", f"script does not parse: {exc}")
    if compilation_enabled():
        # Warm the plan cache at admission so the first (in-process)
        # execution of this submission dispatches over a ready plan.
        compile_cached(script)

    if policy.lint:
        config = LintConfig(
            warn_as_error=policy.lint_warn_as_error,
            assume_defined=frozenset(name for name, _ in
                                     submission.variables),
        )
        diagnostics = lint_script(script, submission.script,
                                  source_name="<submission>", config=config)
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        if errors:
            raise SandboxRejection(
                "lint",
                f"script rejected by ftshlint ({len(errors)} error(s))",
                details=[d.gcc() for d in diagnostics],
            )

    seed = (policy.pinned_seed if policy.pinned_seed is not None
            else submission.seed)
    # Variable order is irrelevant to execution; sorting it here means
    # reordered twins normalize to the same content-addressed job id.
    return dataclasses.replace(
        submission, timeout=window, seed=seed,
        variables=tuple(sorted(submission.variables)))


def admit_campaign(submission: CampaignSubmission,
                   policy: SandboxPolicy) -> CampaignSubmission:
    """Validate and normalize one campaign submission."""
    from ..clients.base import ALL_DISCIPLINES
    from ..experiments.chaos import FAULT_BY_NAME, SCALES, SCENARIOS

    if submission.scenario not in SCENARIOS:
        raise SandboxRejection(
            "unknown",
            f"unknown scenario {submission.scenario!r} "
            f"(expected one of {', '.join(sorted(SCENARIOS))})",
        )
    known = {d.name for d in ALL_DISCIPLINES}
    for name in submission.disciplines:
        if name not in known:
            raise SandboxRejection(
                "unknown",
                f"unknown discipline {name!r} "
                f"(expected one of {', '.join(sorted(known))})",
            )
    if len(set(submission.disciplines)) != len(submission.disciplines):
        raise SandboxRejection("invalid", "duplicate disciplines")
    if submission.fault is not None:
        fault_class = FAULT_BY_NAME.get(submission.fault)
        if fault_class is None:
            raise SandboxRejection(
                "unknown",
                f"unknown fault class {submission.fault!r} "
                f"(expected one of {', '.join(sorted(FAULT_BY_NAME))})",
            )
        if fault_class.scenario != submission.scenario:
            raise SandboxRejection(
                "invalid",
                f"fault {submission.fault!r} targets scenario "
                f"{fault_class.scenario!r}, not {submission.scenario!r}",
            )
        if not submission.levels:
            raise SandboxRejection(
                "invalid", "a fault needs at least one intensity level")
    if submission.levels and submission.fault is None:
        raise SandboxRejection("invalid", "levels given without a fault")
    for level in submission.levels:
        if level not in (1, 2, 3):
            raise SandboxRejection(
                "invalid", f"intensity level {level} outside 1..3")
    if len(set(submission.levels)) != len(submission.levels):
        raise SandboxRejection("invalid", "duplicate intensity levels")
    if submission.scale not in SCALES:
        raise SandboxRejection(
            "unknown",
            f"unknown scale {submission.scale!r} "
            f"(expected one of {', '.join(sorted(SCALES))})",
        )

    scale = SCALES[submission.scale]
    numeric_fields = {
        f.name for f in dataclasses.fields(scale) if f.name != "name"
        and f.name != "levels"
    }
    for name, _value in submission.overrides:
        if name not in numeric_fields:
            raise SandboxRejection(
                "invalid",
                f"override {name!r} is not a scale field "
                f"(expected one of {', '.join(sorted(numeric_fields))})",
            )
    scale = build_scale(submission)
    for field_ in dataclasses.fields(scale):
        if field_.name.endswith("_duration"):
            duration = getattr(scale, field_.name)
            if duration <= 0:
                raise SandboxRejection(
                    "invalid", f"{field_.name} must be positive")
            if duration > policy.max_sim_seconds:
                raise SandboxRejection(
                    "budget",
                    f"{field_.name}={duration:g}s exceeds the "
                    f"{policy.max_sim_seconds:g}s simulated-time budget",
                )

    n_cells = len(submission.disciplines) * (1 + len(submission.levels))
    if n_cells > policy.max_cells:
        raise SandboxRejection(
            "budget",
            f"campaign is {n_cells} cells; policy allows "
            f"{policy.max_cells}",
        )

    seed = (policy.pinned_seed if policy.pinned_seed is not None
            else submission.seed)
    return dataclasses.replace(submission, seed=seed)


def build_scale(submission: CampaignSubmission):
    """The ChaosScale a campaign runs at: named scale + overrides."""
    from ..experiments.chaos import SCALES

    scale = SCALES[submission.scale]
    overrides = {}
    for name, value in submission.overrides:
        current = getattr(scale, name)
        overrides[name] = type(current)(value)
    if overrides:
        overrides["name"] = (f"{submission.scale}+"
                             + ",".join(sorted(overrides)))
        scale = dataclasses.replace(scale, **overrides)
    return scale


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------

def _world_counters(world) -> tuple[tuple[str, float], ...]:
    """The substrate's headline counters, flattened for the outcome."""
    rows: list[tuple[str, float]] = []
    schedd = getattr(world, "schedd", None)
    if schedd is not None:
        rows += [
            ("jobs_submitted", float(schedd.jobs_submitted.count)),
            ("crashes", float(schedd.crashes.count)),
            ("refused", float(schedd.refused.count)),
            ("emfile", float(schedd.emfile.count)),
        ]
    for name in ("transfers", "collisions", "deferrals"):
        counter = getattr(world, name, None)
        if counter is not None:
            rows.append((name, float(counter.count)))
    buffer = getattr(world, "buffer", None)
    if buffer is not None:
        for name in ("files_stored", "files_consumed", "collisions"):
            counter = getattr(buffer, name, None)
            if counter is not None:
                rows.append((name, float(counter.count)))
    return tuple(rows)


def _build_world(kind: str, engine: Engine, registry: CommandRegistry):
    if kind == "condor":
        from ..grid.condor import CondorWorld, register_condor_commands

        world = CondorWorld(engine)
        register_condor_commands(registry, world)
        return world
    if kind == "replica":
        from ..grid.httpserver import ReplicaWorld, register_replica_commands

        world = ReplicaWorld(engine)
        register_replica_commands(registry, world)
        return world
    from ..grid.storage import BufferWorld, register_buffer_commands

    world = BufferWorld(engine)
    register_buffer_commands(registry, world)
    world.start_consumer()
    return world


def run_script_cell(
    script: str,
    variables: tuple[tuple[str, str], ...],
    world: str,
    window: float,
    seed: int,
    max_events: int,
) -> ScriptOutcome:
    """Run one admitted script inside the sim, under budget.

    A pure function of its arguments — module-level so the executor can
    cache it under a content hash and ship it to workers.  The event cap
    and the horizon are enforced by :meth:`Engine.run_budgeted`; the
    horizon sits one window past the script's own deadline so the
    script's *own* timeout machinery fires first and a budget overrun
    only triggers on runaway event churn.
    """
    streams = RandomStreams(seed)
    engine = Engine(streams=streams)
    registry = CommandRegistry()
    world_obj = _build_world(world, engine, registry)
    shell = SimFtsh(engine, registry, world=world_obj,
                    rng=streams.stream("service-client"), name="service")
    process = shell.spawn(script, variables=dict(variables), timeout=window)
    try:
        result, events = engine.run_budgeted(
            process, max_events=max_events, horizon=window * 2.0)
    except BudgetExceeded as exc:
        return ScriptOutcome(
            success=False,
            reason=str(exc),
            timed_out=False,
            sim_elapsed=engine.now,
            events=max_events if exc.budget == "events" else 0,
            counters=_world_counters(world_obj),
            budget_exceeded=exc.budget,
        )
    return ScriptOutcome(
        success=result.success,
        reason=result.reason,
        timed_out=result.timed_out,
        sim_elapsed=result.elapsed,
        events=events,
        counters=_world_counters(world_obj),
    )


def cells_for(submission, policy: SandboxPolicy) -> list[CellSpec]:
    """The executor cells an *admitted* submission fans out to."""
    if isinstance(submission, ScriptSubmission):
        return [CellSpec(
            key="service/script",
            fn=run_script_cell,
            args=(submission.script, submission.variables, submission.world,
                  submission.timeout, submission.seed, policy.max_events),
        )]
    from ..experiments.chaos import run_cell

    scale = build_scale(submission)
    specs: list[CellSpec] = []
    for discipline in submission.disciplines:
        specs.append(CellSpec(
            key=f"service/{submission.scenario}/baseline/{discipline}",
            fn=run_cell,
            args=(submission.scenario, discipline, None, 0, scale,
                  submission.seed, None),
        ))
    for level in submission.levels:
        for discipline in submission.disciplines:
            specs.append(CellSpec(
                key=(f"service/{submission.scenario}/{submission.fault}"
                     f"/i{level}/{discipline}"),
                fn=run_cell,
                args=(submission.scenario, discipline, submission.fault,
                      level, scale, submission.seed, None),
            ))
    return specs
