"""Fan independent simulation cells out over a process pool.

Every campaign in this repo — the figure sweeps, ``runall``, the chaos
matrix, the variance study — is a grid of *cells*: pure functions of a
params object that build their own engine, seed their own named random
streams, and return a picklable result.  Cells share nothing, so they
are embarrassingly parallel, and because randomness comes only from the
seed inside the params, a parallel run is byte-identical to a serial
one.  :func:`run_cells` is the single execution path all campaigns go
through:

* ``jobs=None`` or ``1`` — serial, in submission order (the default);
* ``jobs=0`` — one worker per CPU;
* ``jobs=N`` — an N-worker :class:`~concurrent.futures.ProcessPoolExecutor`.

A :class:`~repro.parallel.cache.ResultCache` layered underneath short-
circuits cells whose content hash already has a stored result, so a
warm rerun of an unchanged campaign costs only hashing and unpickling,
and editing one cell's params recomputes exactly that cell.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

from .transport import strip_observability

if TYPE_CHECKING:
    from .cache import ResultCache

#: Progress callback: ``(cell_key, status)`` with status one of
#: ``"hit"`` (served from cache), ``"run"`` (computing), ``"done"``.
Progress = Callable[[str, str], None]

#: How a caller asks a running campaign to stop: anything with
#: ``is_set()`` (a ``threading.Event``) or a plain bool-returning callable.
Cancel = Any

#: Seconds between cancellation checks while waiting on a worker future.
_CANCEL_POLL = 0.1


class CampaignCancelled(Exception):
    """A campaign stopped early because its cancel hook fired.

    Raised by :func:`run_cells` between cells (serial) or between future
    waits (parallel); pending futures are cancelled and the pool is shut
    down before this propagates, so no workers leak.
    """


def _cancelled(cancel: Optional[Cancel]) -> bool:
    if cancel is None:
        return False
    probe = getattr(cancel, "is_set", cancel)
    return bool(probe())


@dataclass(frozen=True)
class CellSpec:
    """One independent unit of campaign work.

    ``fn`` must be a module-level callable (workers import it by name)
    and must return a picklable value; params objects should carry the
    seed so the cell is a pure function of this spec.  ``cacheable=False``
    opts a cell out of the result cache — used for cells whose point is
    a filesystem side effect (telemetry bundles) rather than the return
    value.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    cacheable: bool = True


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 -> 1, 0 -> cpu_count."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _execute(spec: CellSpec) -> Any:
    """Run one cell; strips live telemetry handles off the result so it
    survives pickling (workers) and storage (cache) identically."""
    return strip_observability(spec.fn(*spec.args, **dict(spec.kwargs)))


def run_cells(
    cells: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Progress] = None,
    cancel: Optional[Cancel] = None,
    backend: Optional[str] = None,
) -> list[Any]:
    """Execute every cell; return results in submission order.

    The contract campaigns rely on: the returned list is positionally
    aligned with ``cells`` no matter how execution interleaved, and the
    values are identical whether computed serially, in parallel, or
    served from a warm cache.

    ``backend`` selects the executor: ``"inprocess"`` (default) is this
    function's own serial/process-pool path; ``"work-stealing"`` and
    ``"socket"`` hand the pending cells to :mod:`repro.dist`, where
    ``jobs`` doubles as the worker-fleet size.  ``$REPRO_DIST_BACKEND``
    applies when no explicit backend is passed.  Every backend honours
    the same contract, scorecards included.

    Dist backends run the wire-protocol v2 hot path by default: workers
    claim adaptively sized *chunks* of cheap cells, settle them with
    batched acks over keep-alive connections, and resolve repeated
    payloads by content digest — all transparent to this contract,
    since leases, retries, and poison bounds stay per-cell.  Set
    ``$REPRO_DIST_BATCH=0`` to pin the fleet to the v1 one-request-
    per-cell protocol (the CI equivalence runs do exactly that).

    ``cancel`` (a ``threading.Event`` or bool-returning callable) stops
    the campaign between cells: pending work is cancelled, the pool shuts
    down without leaking workers, and :class:`CampaignCancelled` is
    raised.  A KeyboardInterrupt (or SystemExit) gets the same clean
    shutdown — ``cancel_futures=True`` instead of orphaned workers —
    before re-raising; the service plane reuses both paths for job
    cancellation.
    """
    from ..dist import resolve_backend, run_dist_cells

    resolved = resolve_backend(backend)
    if resolved != "inprocess":
        return run_dist_cells(resolved, cells, jobs=jobs, cache=cache,
                              progress=progress, cancel=cancel)

    say = progress if progress is not None else (lambda _key, _status: None)
    results: list[Any] = [None] * len(cells)
    pending: list[int] = []

    keys: dict[int, str] = {}
    for index, spec in enumerate(cells):
        if cache is not None and spec.cacheable:
            key = cache.key_for(spec.fn, spec.args, spec.kwargs)
            keys[index] = key
            hit, value = cache.get(key)
            if hit:
                say(spec.key, "hit")
                results[index] = value
                continue
        pending.append(index)

    workers = resolve_jobs(jobs)
    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            if _cancelled(cancel):
                raise CampaignCancelled(cells[index].key)
            say(cells[index].key, "run")
            results[index] = _execute(cells[index])
            say(cells[index].key, "done")
    else:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        try:
            futures = {}
            for index in pending:
                say(cells[index].key, "run")
                futures[index] = pool.submit(_execute, cells[index])
            for index in pending:
                while True:
                    if _cancelled(cancel):
                        raise CampaignCancelled(cells[index].key)
                    try:
                        results[index] = futures[index].result(
                            timeout=_CANCEL_POLL if cancel is not None
                            else None)
                        break
                    except FutureTimeout:
                        continue
                say(cells[index].key, "done")
        except (KeyboardInterrupt, SystemExit, CampaignCancelled):
            # The paper's discipline applied to ourselves: release the
            # shared resource on the way out.  cancel_futures drops the
            # queued cells; the one mid-flight finishes (POSIX gives no
            # safe preemption), then every worker exits.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    if cache is not None:
        for index in pending:
            if index in keys:
                cache.put(keys[index], results[index])
    return results
