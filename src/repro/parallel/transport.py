"""Making scenario results safe to move between processes and to disk.

Worker processes hand results back through ``pickle``; the cache stores
the same pickles.  Two things would break that silently:

* a live :class:`~repro.obs.api.Observability` attached to the result's
  params — its clock is a closure over the (long gone) engine and does
  not pickle; and
* mixed numeric types in time series (``numpy.float64`` probes next to
  plain floats) — they pickle, but render and compare differently.

:func:`strip_observability` removes the first at the transport boundary
(telemetry is exported to files *inside* the worker, never shipped as a
live object).  The second is fixed at the source — ``TimeSeries.record``
coerces to ``float`` — and :func:`to_jsonable` provides the canonical
flat view the determinism tests compare byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..sim.monitor import TimeSeries


def strip_observability(result: Any) -> Any:
    """Detach any live telemetry context riding on ``result.params``.

    The obs object is a sink the caller owns; by the time a result
    crosses a process boundary its telemetry has already been written to
    disk by the worker, so dropping the handle loses nothing.
    """
    params = getattr(result, "params", None)
    if params is not None and getattr(params, "obs", None) is not None:
        try:
            params.obs = None
        except (AttributeError, dataclasses.FrozenInstanceError):
            pass
    return result


def _scalar(value: Any) -> Any:
    """Collapse numpy-ish scalars to plain Python numbers."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bool)):
        try:
            return item()
        except TypeError:
            pass
    return value


def to_jsonable(value: Any) -> Any:
    """A plain-JSON view of a result tree.

    Dataclasses become dicts (tagged with their type name), time series
    become ``{"series": name, "times": [...], "values": [...]}``, tuples
    become lists, and numpy scalars collapse to Python numbers.  Two
    results that serialize to the same JSON text are the same
    measurement — this is the equality the determinism suite asserts
    across serial, parallel, and cached executions.
    """
    value = _scalar(value)
    if isinstance(value, TimeSeries):
        return {
            "series": value.name,
            "times": [float(t) for t in value.times],
            "values": [float(v) for v in value.values],
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        row: dict[str, Any] = {"__type__": type(value).__qualname__}
        for field in dataclasses.fields(value):
            row[field.name] = to_jsonable(getattr(value, field.name))
        return row
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, float):
        return value if value == value and value not in (float("inf"), float("-inf")) else repr(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)
