"""Parallel campaign execution with a content-addressed result cache.

The paper's evaluation (and this repo's chaos campaign) is a grid of
independent simulation cells.  This package farms those cells out over
a process pool (:func:`run_cells`), caches each cell's result under a
content hash of its inputs and the repo's code fingerprint
(:class:`ResultCache`), and guarantees — because every cell derives all
randomness from named streams seeded by its params — that serial,
parallel, and cached executions are byte-identical.
"""

from .executor import CampaignCancelled, CellSpec, resolve_jobs, run_cells
from .transport import strip_observability, to_jsonable

_CACHE_NAMES = (
    "ResultCache",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "default_cache_dir",
)


def __getattr__(name: str):
    """Lazy cache import: keeps ``python -m repro.parallel.cache`` from
    tripping runpy's already-imported warning."""
    if name in _CACHE_NAMES:
        from . import cache

        return getattr(cache, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CampaignCancelled",
    "CellSpec",
    "ResultCache",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "default_cache_dir",
    "resolve_jobs",
    "run_cells",
    "strip_observability",
    "to_jsonable",
]
