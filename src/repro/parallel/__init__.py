"""Parallel campaign execution with a content-addressed result cache.

The paper's evaluation (and this repo's chaos campaign) is a grid of
independent simulation cells.  This package farms those cells out over
a process pool (:func:`run_cells`), caches each cell's result under a
content hash of its inputs and the repo's code fingerprint
(:class:`ResultCache`), and guarantees — because every cell derives all
randomness from named streams seeded by its params — that serial,
parallel, and cached executions are byte-identical.
"""

from .cache import (
    ResultCache,
    canonical,
    canonical_json,
    code_fingerprint,
    default_cache_dir,
)
from .executor import CellSpec, resolve_jobs, run_cells
from .transport import strip_observability, to_jsonable

__all__ = [
    "CellSpec",
    "ResultCache",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "default_cache_dir",
    "resolve_jobs",
    "run_cells",
    "strip_observability",
    "to_jsonable",
]
