"""Content-addressed result cache for campaign cells.

A cell's cache key is a stable hash of four things:

* the *cell function* (module + qualified name) — the scenario runner;
* its *canonicalized parameters* — dataclasses walked field by field
  (telemetry sinks excluded), dicts key-sorted, floats kept exact;
* the *seed*, which lives inside those parameters; and
* a *code fingerprint* — a hash over every ``repro`` source file, so
  editing any module invalidates previous results wholesale.

Values are pickled under ``<root>/<key[:2]>/<key>.pkl`` (root defaults
to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).  Writes are atomic
(temp file + ``os.replace``) so concurrent campaigns never observe a
torn entry; a corrupt or unreadable entry is treated as a miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from functools import lru_cache
from typing import Any, Callable, Mapping, Optional

#: Parameter fields that carry live telemetry sinks, not semantics.
NON_SEMANTIC_FIELDS = frozenset({"obs"})


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (path + bytes), hex-truncated.

    Any edit anywhere in the package changes the fingerprint, which
    changes every cache key — a deliberately coarse but safe
    invalidation rule: stale results are worse than recomputation.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def canonical(value: Any) -> Any:
    """A JSON-able canonical view of a parameter object.

    Dataclasses become ``{"__type__": name, field: ...}`` dicts with
    non-semantic fields dropped; tuples and lists flatten to lists;
    dict keys are stringified (sorting happens at dump time).  Anything
    unrecognized falls back to ``repr`` — stable for the config objects
    this repo uses.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        row: dict[str, Any] = {"__type__": type(value).__qualname__}
        for field in dataclasses.fields(value):
            if field.name in NON_SEMANTIC_FIELDS:
                continue
            row[field.name] = canonical(getattr(value, field.name))
        return row
    if isinstance(value, Mapping):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if callable(value):
        return f"{getattr(value, '__module__', '?')}:{getattr(value, '__qualname__', repr(value))}"
    return repr(value)


def canonical_json(value: Any) -> str:
    """The canonical view serialized deterministically."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Pickled cell results addressed by content hash.

    The cache never interprets values — it stores whatever picklable
    object the cell function returned and hands it back verbatim, so a
    warm rerun is byte-identical to the run that populated it.
    """

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def key_for(self, fn: Callable[..., Any], args: tuple = (),
                kwargs: Optional[Mapping[str, Any]] = None) -> str:
        """The content hash addressing ``fn(*args, **kwargs)``'s result."""
        doc = {
            "fn": f"{fn.__module__}:{fn.__qualname__}",
            "args": canonical(list(args)),
            "kwargs": canonical(dict(kwargs or {})),
            "code": self.fingerprint,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    # ------------------------------------------------------------------
    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError):
            self.misses += 1
            return False, None
        try:
            # Touch on hit so mtime is a recency signal: trim() drops the
            # least recently *used* entry, not the least recently written.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    # ------------------------------------------------------------------
    # Store management (the ``python -m repro.parallel.cache`` surface)
    # ------------------------------------------------------------------
    def entries(self) -> list[tuple[str, int, float]]:
        """Every stored entry as ``(key, bytes, mtime)``, oldest first.

        mtime is refreshed on every hit (see :meth:`get`), so "oldest"
        means least recently used, which is the eviction order
        :meth:`trim` applies.
        """
        rows: list[tuple[str, int, float]] = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return rows
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                rows.append((name[:-4], info.st_size, info.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0]))
        return rows

    def disk_stats(self) -> dict[str, Any]:
        """Aggregate view of the on-disk store: count, bytes, age span."""
        rows = self.entries()
        return {
            "root": self.root,
            "entries": len(rows),
            "bytes": sum(size for _key, size, _mtime in rows),
            "oldest": rows[0][2] if rows else None,
            "newest": rows[-1][2] if rows else None,
        }

    def remove(self, key: str) -> bool:
        """Delete one entry; True if it existed."""
        try:
            os.unlink(self._path(key))
        except OSError:
            return False
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key, _size, _mtime in self.entries():
            if self.remove(key):
                removed += 1
        return removed

    def trim(self, max_bytes: int) -> list[str]:
        """Evict least-recently-used entries until the store fits.

        Returns the evicted keys (possibly empty).  ``max_bytes=0``
        empties the store.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        rows = self.entries()
        total = sum(size for _key, size, _mtime in rows)
        evicted: list[str] = []
        for key, size, _mtime in rows:
            if total <= max_bytes:
                break
            if self.remove(key):
                total -= size
                evicted.append(key)
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResultCache root={self.root!r} hits={self.hits} "
                f"misses={self.misses}>")


# ---------------------------------------------------------------------------
# CLI: inspect and bound the shared store backing campaigns + the service
# ---------------------------------------------------------------------------

def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{int(size)} B"  # pragma: no cover - unreachable


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.parallel.cache --stats|--clear|--max-bytes N``."""
    import argparse
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.cache",
        description="Inspect and bound the content-addressed result cache.",
    )
    parser.add_argument(
        "--dir", metavar="DIR", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    action = parser.add_mutually_exclusive_group()
    action.add_argument(
        "--stats", action="store_true",
        help="print entry count, total bytes and entry age span (default)",
    )
    action.add_argument(
        "--clear", action="store_true", help="delete every cached result"
    )
    action.add_argument(
        "--max-bytes", type=int, metavar="N",
        help="evict least-recently-used entries until the store is <= N bytes",
    )
    args = parser.parse_args(argv)

    # Management never needs the code fingerprint (and must not fail on
    # a store written by a different checkout), so pin a dummy one.
    store = ResultCache(root=args.dir, fingerprint="-")

    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}")
        return 0
    if args.max_bytes is not None:
        if args.max_bytes < 0:
            parser.error(f"--max-bytes must be >= 0, got {args.max_bytes}")
        evicted = store.trim(args.max_bytes)
        stats = store.disk_stats()
        print(f"evicted {len(evicted)} entries; {stats['entries']} remain "
              f"({_format_bytes(stats['bytes'])}) in {store.root}")
        return 0

    stats = store.disk_stats()
    print(f"cache root: {stats['root']}")
    print(f"entries:    {stats['entries']}")
    print(f"bytes:      {stats['bytes']} ({_format_bytes(stats['bytes'])})")
    if stats["entries"]:
        now = time.time()
        print(f"oldest:     {now - stats['oldest']:.0f}s ago")
        print(f"newest:     {now - stats['newest']:.0f}s ago")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main(sys.argv[1:]))
