"""Content-addressed result cache for campaign cells.

A cell's cache key is a stable hash of four things:

* the *cell function* (module + qualified name) — the scenario runner;
* its *canonicalized parameters* — dataclasses walked field by field
  (telemetry sinks excluded), dicts key-sorted, floats kept exact;
* the *seed*, which lives inside those parameters; and
* a *code fingerprint* — a hash over every ``repro`` source file, so
  editing any module invalidates previous results wholesale.

Values are pickled under ``<root>/<key[:2]>/<key>.pkl`` (root defaults
to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).  Writes are atomic
(temp file + ``os.replace``) so concurrent campaigns never observe a
torn entry; a corrupt or unreadable entry is treated as a miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from functools import lru_cache
from typing import Any, Callable, Mapping, Optional

#: Parameter fields that carry live telemetry sinks, not semantics.
NON_SEMANTIC_FIELDS = frozenset({"obs"})


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (path + bytes), hex-truncated.

    Any edit anywhere in the package changes the fingerprint, which
    changes every cache key — a deliberately coarse but safe
    invalidation rule: stale results are worse than recomputation.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def canonical(value: Any) -> Any:
    """A JSON-able canonical view of a parameter object.

    Dataclasses become ``{"__type__": name, field: ...}`` dicts with
    non-semantic fields dropped; tuples and lists flatten to lists;
    dict keys are stringified (sorting happens at dump time).  Anything
    unrecognized falls back to ``repr`` — stable for the config objects
    this repo uses.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        row: dict[str, Any] = {"__type__": type(value).__qualname__}
        for field in dataclasses.fields(value):
            if field.name in NON_SEMANTIC_FIELDS:
                continue
            row[field.name] = canonical(getattr(value, field.name))
        return row
    if isinstance(value, Mapping):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if callable(value):
        return f"{getattr(value, '__module__', '?')}:{getattr(value, '__qualname__', repr(value))}"
    return repr(value)


def canonical_json(value: Any) -> str:
    """The canonical view serialized deterministically."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Pickled cell results addressed by content hash.

    The cache never interprets values — it stores whatever picklable
    object the cell function returned and hands it back verbatim, so a
    warm rerun is byte-identical to the run that populated it.
    """

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def key_for(self, fn: Callable[..., Any], args: tuple = (),
                kwargs: Optional[Mapping[str, Any]] = None) -> str:
        """The content hash addressing ``fn(*args, **kwargs)``'s result."""
        doc = {
            "fn": f"{fn.__module__}:{fn.__qualname__}",
            "args": canonical(list(args)),
            "kwargs": canonical(dict(kwargs or {})),
            "code": self.fingerprint,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    # ------------------------------------------------------------------
    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResultCache root={self.root!r} hits={self.hits} "
                f"misses={self.misses}>")
