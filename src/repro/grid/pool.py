"""The execution side of the Condor model: workers and matchmaking.

The paper describes the schedd as "an agent that works on behalf of a
grid user, keeping jobs in a persistent queue while finding sites where
they may run."  Scenario 1 only measures the *submission* half; the DAG
scenario (and any workflow study) also needs the other half — jobs
waiting for machines, running, and completing.

:class:`WorkerPool` models a pool of execution slots with a matchmaker
cycle: queued jobs are matched to idle workers every negotiation
interval (Condor's negotiator runs periodically, not per-job), run for
their execution time, and complete.  Workers can be configured to fail
mid-job with a seeded probability, putting the job back in the queue —
the recoverable failures ftsh-style submitters never even see.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional

from ..faults.config import (
    validate_at_least,
    validate_non_negative,
    validate_positive,
    validate_probability,
)
from ..sim.engine import Engine
from ..sim.events import Event
from ..sim.monitor import Counter


@dataclass(slots=True)
class Job:
    """One queued/executing job."""

    id: int
    exec_time: float
    #: Event triggered when the job finally completes.
    done: Event = None  # type: ignore[assignment]
    attempts: int = 0


class Worker:
    """One execution slot."""

    __slots__ = ("name", "busy", "jobs_run", "failure_rate")

    def __init__(self, name: str, failure_rate: float = 0.0) -> None:
        self.name = name
        self.busy = False
        self.jobs_run = 0
        self.failure_rate = validate_probability("failure_rate", failure_rate)


class WorkerPool:
    """Idle workers + a job queue + a periodic matchmaker.

    Usage from a sim process::

        job = pool.submit(exec_time=30.0)
        yield job.done          # resumes when the job has completed
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int = 50,
        negotiation_interval: float = 5.0,
        failure_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        validate_at_least("n_workers", n_workers, 1)
        validate_probability("failure_rate", failure_rate)
        validate_positive("negotiation_interval", negotiation_interval)
        self.engine = engine
        self.negotiation_interval = negotiation_interval
        self.rng = rng if rng is not None else engine.streams.stream("worker-pool")
        self.workers = [
            Worker(f"worker-{i}", failure_rate) for i in range(n_workers)
        ]
        self.queue: list[Job] = []
        self._ids = itertools.count(1)
        self.jobs_completed = Counter(engine, "jobs-completed")
        self.jobs_requeued = Counter(engine, "jobs-requeued", keep_series=False)
        engine.process(self._negotiator(), name="negotiator")

    # ------------------------------------------------------------------
    @property
    def idle_workers(self) -> int:
        return sum(1 for worker in self.workers if not worker.busy)

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def submit(self, exec_time: float) -> Job:
        """Queue a job; its ``done`` event fires on completion."""
        validate_non_negative("exec_time", exec_time)
        job = Job(id=next(self._ids), exec_time=exec_time,
                  done=Event(self.engine))
        self.queue.append(job)
        return job

    # ------------------------------------------------------------------
    def _negotiator(self):
        """Periodic matchmaking: FIFO jobs onto idle workers."""
        while True:
            yield self.engine.timeout(self.negotiation_interval)
            for worker in self.workers:
                if not self.queue:
                    break
                if worker.busy:
                    continue
                job = self.queue.pop(0)
                worker.busy = True
                self.engine.process(
                    self._execute(worker, job), name=f"{worker.name}:job{job.id}"
                )

    def _execute(self, worker: Worker, job: Job):
        job.attempts += 1
        fails = worker.failure_rate > 0 and self.rng.random() < worker.failure_rate
        if fails:
            # the machine dies partway through; the job goes back to queue
            yield self.engine.timeout(
                job.exec_time * self.rng.uniform(0.1, 0.9)
            )
            worker.busy = False
            self.jobs_requeued.increment()
            self.queue.append(job)
            return
        yield self.engine.timeout(job.exec_time)
        worker.busy = False
        worker.jobs_run += 1
        self.jobs_completed.increment()
        job.done.succeed(job)
