"""A kernel file-descriptor table with exhaustion semantics.

The paper's first scenario turns on an *unmanaged* resource: "the source
of failures is frequently in some prosaic unmanaged resource such as free
file descriptors".  Unlike disk quota or CPU shares, the FD table is not
a queued resource — an ``open()``/``socket()`` with no free slot fails
immediately with EMFILE/ENFILE.  :class:`FDTable` therefore only offers
non-blocking allocation.

The Ethernet carrier-sense probe in Figure 1's script reads the free
count the way Linux exposes it (``/proc/sys/fs/file-nr``); see
:func:`repro.grid.condor.register_condor_commands`.
"""

from __future__ import annotations

from ..core.errors import SimulationError
from ..faults.config import validate_at_least, validate_non_negative
from ..sim.engine import Engine
from ..sim.monitor import TimeSeries


class FDTable:
    """System-wide file descriptor accounting."""

    def __init__(self, engine: Engine, capacity: int = 8192) -> None:
        validate_at_least("fd capacity", capacity, 1)
        self.engine = engine
        self.capacity = capacity
        self._used = 0
        #: Failed allocations (EMFILE events).
        self.failures = 0
        #: Peak simultaneous usage, for post-run analysis.
        self.peak_used = 0
        #: Optional recording of the free count at every change.
        self.series: TimeSeries | None = None

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def allocate(self, count: int) -> bool:
        """Claim ``count`` descriptors now; False (EMFILE) if unavailable."""
        validate_non_negative("fd allocation", count)
        if self._used + count > self.capacity:
            self.failures += 1
            return False
        self._used += count
        if self._used > self.peak_used:
            self.peak_used = self._used
        self._note()
        return True

    def release(self, count: int) -> None:
        """Return ``count`` descriptors."""
        validate_non_negative("fd release", count)
        if count > self._used:
            raise SimulationError(
                f"releasing {count} fds but only {self._used} are in use"
            )
        self._used -= count
        self._note()

    def _note(self) -> None:
        if self.series is not None:
            self.series.record(self.engine.now, self.free)
