"""Replicated single-threaded file servers, one of them a black hole
(paper scenario 3, Figures 6-7).

"Black holes are services that endlessly block or terminate any
interacting client process."  The paper's setup: three web servers
replicate a read-only file service; each is single-threaded (one client
transfers at a time); one *accepts connections but never sends data*.
Clients read a 100 MB file (~10 s at full rate), choosing a server at
random per attempt.

The Aloha client bounds each fetch with a 60 s ``try``; a black-hole
visit costs the full 60 s (a **collision**).  The Ethernet client first
fetches a well-known one-byte flag file under a 5 s ``try`` — a cheap
carrier sense: if the probe stalls, the ``forany`` moves on (a
**deferral**) without ever committing 60 s.

Accounting lives in the server handlers so it is discipline-agnostic:
an interrupted data transfer is a collision, an interrupted/failed
probe is a deferral, a finished data transfer is a transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..obs.api import NULL_OBS
from ..sim.engine import Engine
from ..sim.events import Interrupt
from ..sim.monitor import Counter
from ..sim.resources import Resource
from ..simruntime.registry import CommandContext, CommandRegistry

#: Practically-infinite stall used by black holes; interruptible.
_FOREVER = 1e12


@dataclass(frozen=True, slots=True)
class ReplicaConfig:
    """Scenario tunables (paper values where given)."""

    data_size_mb: float = 100.0
    flag_size_mb: float = 1e-6            # the well-known one-byte file
    bandwidth_mb_s: float = 10.0          # 100 MB "takes about 10 seconds"
    connect_latency: float = 0.1
    #: Opt-in load-dependent service degradation: when > 0, a transfer
    #: slows by ``1 + waiting/degradation_connections`` — every queued
    #: connection costs real server capacity (thread churn, memory
    #: pressure), so hammering a degraded service hurts *everyone*.
    #: 0 (the default) keeps the paper's load-independent servers.
    degradation_connections: int = 0
    #: Opt-in accept cost: server time burnt per accepted request before
    #: any bytes move (fork/accept/TLS work).  Makes reconnect churn
    #: consume real service capacity — the "every retry costs the shared
    #: resource" mechanism of scenario 1, here for the file servers.
    accept_overhead: float = 0.0


class FileServer:
    """A single-threaded HTTP-ish file server; optionally a black hole."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        config: ReplicaConfig,
        black_hole: bool = False,
    ) -> None:
        self.engine = engine
        self.name = name
        self.config = config
        self.black_hole = black_hole
        #: The accept loop: one transfer at a time, FIFO backlog.
        self.slot = Resource(engine, capacity=1)
        self.transfers = Counter(engine, f"{name}-transfers")
        #: Fault hooks: while ``failing`` the server serves
        #: ``reset_fraction`` of each request and then resets it (a 5xx
        #: partway through the body).  Driven by
        #: :class:`repro.faults.injectors.HttpErrorInjector`.
        self.failing = False
        self.reset_fraction = 0.5
        self.resets = Counter(engine, f"{name}-resets", keep_series=False)

    def size_of(self, path: str) -> float:
        return self.config.flag_size_mb if path == "flag" else self.config.data_size_mb

    def service_time(self, path: str) -> float:
        """Time to serve ``path`` now, including load degradation."""
        base = self.size_of(path) / self.config.bandwidth_mb_s
        threshold = self.config.degradation_connections
        if threshold > 0:
            base *= 1.0 + len(self.slot.queue) / threshold
        return base


class ReplicaWorld:
    """Scenario 3's shared state and global accounting."""

    def __init__(
        self,
        engine: Engine,
        config: ReplicaConfig | None = None,
        hosts: tuple[str, ...] = ("xxx", "yyy", "zzz"),
        black_holes: tuple[str, ...] = ("zzz",),
        obs: Any = None,
    ) -> None:
        self.engine = engine
        self.config = config or ReplicaConfig()
        self.servers: dict[str, FileServer] = {
            host: FileServer(engine, host, self.config, black_hole=host in black_holes)
            for host in hosts
        }
        #: Completed 100 MB transfers (the Figures' "Transfers" series).
        self.transfers = Counter(engine, "transfers")
        #: Data fetches aborted by the 60 s timeout ("Collisions").
        self.collisions = Counter(engine, "collisions")
        #: Probe fetches that failed/stalled ("Deferrals").
        self.deferrals = Counter(engine, "deferrals")
        #: Telemetry mirror with a per-server stream.
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_transfers = metrics.counter(
            "grid_replica_transfers_total", "completed data transfers",
            labels=("server",))
        self._m_collisions = metrics.counter(
            "grid_replica_collisions_total", "data fetches aborted by timeout")
        self._m_deferrals = metrics.counter(
            "grid_replica_deferrals_total", "probe fetches that failed/stalled")

    def parse_url(self, url: str) -> Optional[tuple[FileServer, str]]:
        """``http://host/path`` -> (server, path); None if unknown."""
        prefix = "http://"
        if not url.startswith(prefix):
            return None
        rest = url[len(prefix):]
        host, _, path = rest.partition("/")
        server = self.servers.get(host)
        if server is None:
            return None
        return server, path


def register_replica_commands(registry: CommandRegistry, world: ReplicaWorld) -> None:
    """Register ``wget`` so the paper's scripts run verbatim."""

    engine = world.engine
    config = world.config

    @registry.register("wget")
    def wget(ctx: CommandContext):
        if not ctx.args:
            return 1
        parsed = world.parse_url(ctx.args[-1])
        if parsed is None:
            yield engine.timeout(config.connect_latency)
            return 1
        server, path = parsed
        is_probe = path == "flag"

        request = server.slot.request()
        try:
            yield engine.timeout(config.connect_latency)
            yield request  # waiting in the accept queue of a busy server
            if server.black_hole:
                # Connected, but no bytes will ever come.
                yield engine.timeout(_FOREVER)
                return 1  # pragma: no cover - only reachable by interrupt
            if config.accept_overhead > 0:
                yield engine.timeout(config.accept_overhead)
            if server.failing:
                # 5xx partway through the body: the service time spent is
                # wasted on the single slot, and the fetch fails.
                yield engine.timeout(
                    server.service_time(path) * server.reset_fraction)
                server.resets.increment()
                if is_probe:
                    world.deferrals.increment()
                    world._m_deferrals.inc()
                else:
                    world.collisions.increment()
                    world._m_collisions.inc()
                return 1
            yield engine.timeout(server.service_time(path))
            server.transfers.increment()
            if is_probe:
                return 0
            world.transfers.increment()
            world._m_transfers.labels(server=server.name).inc()
            return 0
        except Interrupt:
            # The client's try-limit expired while we were queued, stalled
            # on the black hole, or mid-transfer.
            if is_probe:
                world.deferrals.increment()
                world._m_deferrals.inc()
            else:
                world.collisions.increment()
                world._m_collisions.inc()
            return 1
        finally:
            server.slot.release(request)
