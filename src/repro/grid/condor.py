"""A Condor-like job submission substrate (paper scenario 1, Figures 1-3).

The paper submitted jobs from hundreds of clients to one Condor *schedd*
and discovered the binding resource was the kernel file-descriptor table:
clients' connections each pin descriptors; when the schedd itself cannot
allocate descriptors it crashes, dropping every connection at once (the
"broadcast jam"), then restarts.

We model exactly that feedback loop:

* a **connection** pins :attr:`CondorConfig.fds_per_connection` FDs from
  connect until completion/abort;
* the schedd serves at most :attr:`CondorConfig.service_concurrency`
  submissions at once (FIFO), each taking
  ``base_service_time * (1 + open_connections / degradation_connections)``
  — CPU contention from many open connections slows everyone, which is
  why even polite clients only reach ~50% of peak under heavy load
  (paper §5, Figure 1 commentary);
* committing a job makes the schedd transiently allocate
  :attr:`CondorConfig.commit_fds` descriptors; if that allocation fails
  the schedd **crashes**: every live connection dies, the FD table
  springs back to near-empty (the upward spikes in Figure 2), and the
  schedd is down for :attr:`CondorConfig.restart_delay` seconds.

The ftsh-visible commands (``condor_submit``, the carrier-sense ``cut
-f2 /proc/sys/fs/file-nr``) are registered by
:func:`register_condor_commands`, so the scripts in
:mod:`repro.clients.scripts` read exactly like the paper's listings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from ..obs.api import NULL_OBS
from ..sim.engine import Engine
from ..sim.events import Interrupt
from ..sim.monitor import Counter
from ..sim.process import Process
from ..sim.resources import Request, Resource
from ..simruntime.registry import CommandContext, CommandRegistry
from .fdtable import FDTable


@dataclass(frozen=True, slots=True)
class CondorConfig:
    """Tunables for the submission scenario (defaults give the paper's shapes)."""

    fd_capacity: int = 8192
    fds_per_connection: int = 20
    commit_fds: int = 64
    connect_setup_time: float = 0.5
    service_concurrency: int = 10
    base_service_time: float = 3.0
    degradation_connections: int = 300
    refusal_latency: float = 1.0
    emfile_latency: float = 0.5
    restart_delay: float = 60.0
    #: The schedd's own periodic descriptor demand (matchmaking sockets,
    #: log rotation, queue checkpoints).  When the table is pinned by
    #: client connections this allocation fails and the schedd crashes —
    #: the paper's "schedd itself failing when it cannot allocate enough
    #: FDs".
    maintenance_fds: int = 256
    maintenance_interval: float = 5.0
    maintenance_duration: float = 1.0


class Connection:
    """One client's open submission connection."""

    __slots__ = ("id", "process", "fds", "request")

    def __init__(self, conn_id: int, process: Process, fds: int) -> None:
        self.id = conn_id
        self.process = process
        self.fds = fds
        self.request: Optional[Request] = None


class Schedd:
    """The submission agent: persistent queue manager for a grid user."""

    def __init__(
        self,
        engine: Engine,
        fdtable: FDTable,
        config: CondorConfig,
        obs: Any = None,
    ) -> None:
        self.engine = engine
        self.fdtable = fdtable
        self.config = config
        self.up = True
        self.service = Resource(engine, capacity=config.service_concurrency)
        self.connections: dict[int, Connection] = {}
        self._conn_ids = itertools.count(1)
        self.jobs_submitted = Counter(engine, "jobs-submitted")
        self.crashes = Counter(engine, "schedd-crashes")
        self.refused = Counter(engine, "connections-refused", keep_series=False)
        self.emfile = Counter(engine, "emfile-failures", keep_series=False)
        #: Telemetry mirror of the Counter objects above, plus live gauges
        #: (the obs registry carries labels and exports; the Counters stay
        #: for existing figure code).
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_jobs = metrics.counter(
            "grid_jobs_submitted_total", "jobs committed by the schedd")
        self._m_crashes = metrics.counter(
            "grid_schedd_crashes_total", "schedd crashes from FD starvation")
        self._m_refused = metrics.counter(
            "grid_connections_refused_total", "submissions refused while down")
        self._m_emfile = metrics.counter(
            "grid_emfile_failures_total", "connections denied by a full FD table")
        metrics.gauge(
            "grid_fds_free", "free descriptors in the kernel table"
        ).set_function(lambda: float(self.fdtable.free))
        metrics.gauge(
            "grid_connections_open", "open submission connections"
        ).set_function(lambda: float(len(self.connections)))
        metrics.gauge(
            "grid_schedd_up", "1 while the schedd is serving, 0 while down"
        ).set_function(lambda: 1.0 if self.up else 0.0)
        engine.process(self._maintenance(), name="schedd-maintenance")

    def _maintenance(self):
        """Periodic housekeeping needing descriptors; starvation crashes us."""
        config = self.config
        while True:
            yield self.engine.timeout(config.maintenance_interval)
            if not self.up:
                continue
            if not self.fdtable.allocate(config.maintenance_fds):
                self.crash()
                continue
            yield self.engine.timeout(config.maintenance_duration)
            self.fdtable.release(config.maintenance_fds)

    # ------------------------------------------------------------------
    def open_connection(self, process: Process) -> Optional[Connection]:
        """Try to establish a connection for ``process``.

        Returns None if the FD table cannot supply the connection's
        descriptors (EMFILE).  Caller must eventually
        :meth:`close_connection`.
        """
        if not self.fdtable.allocate(self.config.fds_per_connection):
            self.emfile.increment()
            self._m_emfile.inc()
            return None
        connection = Connection(next(self._conn_ids), process, self.config.fds_per_connection)
        self.connections[connection.id] = connection
        return connection

    def close_connection(self, connection: Connection) -> None:
        """Release everything the connection holds; idempotent."""
        if self.connections.pop(connection.id, None) is None:
            return
        if connection.request is not None:
            self.service.release(connection.request)
            connection.request = None
        self.fdtable.release(connection.fds)

    def service_time(self) -> float:
        """Per-job service time at the current connection load."""
        load = len(self.connections) / self.config.degradation_connections
        return self.config.base_service_time * (1.0 + load)

    # ------------------------------------------------------------------
    def crash(self, culprit: Optional[Connection] = None) -> None:
        """FD starvation: drop every connection and go down for a while.

        ``culprit`` (the connection whose commit failed) is cleaned up by
        its own caller, not interrupted — a process cannot interrupt
        itself.
        """
        self.up = False
        self.crashes.increment()
        self._m_crashes.inc()
        victims = [
            connection
            for connection in list(self.connections.values())
            if culprit is None or connection.id != culprit.id
        ]
        for connection in victims:
            # The client's handler catches Interrupt, closes its own
            # connection, and reports failure — "causing all of its
            # connected clients to fail and backoff" (paper §5).
            if connection.process.is_alive:
                connection.process.interrupt("schedd crashed")
            else:  # pragma: no cover - defensive: stale entry
                self.close_connection(connection)
        self.engine.process(self._restart(), name="schedd-restart")

    def _restart(self):
        yield self.engine.timeout(self.config.restart_delay)
        self.up = True


class CondorWorld:
    """Everything scenario 1 shares: engine, FD table, schedd."""

    def __init__(
        self,
        engine: Engine,
        config: CondorConfig | None = None,
        obs: Any = None,
    ) -> None:
        self.engine = engine
        self.config = config or CondorConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.fdtable = FDTable(engine, self.config.fd_capacity)
        self.schedd = Schedd(engine, self.fdtable, self.config, obs=self.obs)


def register_condor_commands(registry: CommandRegistry, world: CondorWorld) -> None:
    """Register ``condor_submit`` and the FD carrier-sense probe."""

    config = world.config
    engine = world.engine
    schedd = world.schedd

    @registry.register("condor_submit")
    def condor_submit(ctx: CommandContext):
        """Submit one job: connect, queue for the schedd, transfer, commit."""
        if not schedd.up:
            schedd.refused.increment()
            schedd._m_refused.inc()
            yield engine.timeout(config.refusal_latency)
            return 1

        process = engine.active_process
        connection = schedd.open_connection(process)
        if connection is None:
            yield engine.timeout(config.emfile_latency)
            return 1

        commit_held = 0
        try:
            yield engine.timeout(config.connect_setup_time)
            if not schedd.up:  # crashed while we were in TCP setup
                return 1
            connection.request = schedd.service.request()
            yield connection.request
            # In service: the schedd commits the job, which needs its own
            # descriptors.  Failure here is *schedd* failure, not ours.
            if not world.fdtable.allocate(config.commit_fds):
                schedd.crash(culprit=connection)
                return 1
            commit_held = config.commit_fds
            yield engine.timeout(schedd.service_time())
            schedd.jobs_submitted.increment()
            schedd._m_jobs.inc()
            return 0
        except Interrupt:
            # Schedd crash, client deadline kill, or scenario teardown.
            return 1
        finally:
            if commit_held:
                world.fdtable.release(commit_held)
            schedd.close_connection(connection)

    @registry.register("cut")
    def cut(ctx: CommandContext):
        """The paper's carrier probe: ``cut -f2 /proc/sys/fs/file-nr``.

        file-nr's second field is the number of *free* descriptors.
        Other argument patterns are not simulated.
        """
        if ctx.args == ["-f2", "/proc/sys/fs/file-nr"]:
            return 0, f"{world.fdtable.free}\n"
        return 1, ""
        yield  # pragma: no cover - generator marker
