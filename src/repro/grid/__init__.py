"""Simulated grid substrates: the contended systems of the paper's scenarios.

* :mod:`.fdtable` + :mod:`.condor` — scenario 1 (job submission)
* :mod:`.storage` — scenario 2 (shared output buffer)
* :mod:`.httpserver` — scenario 3 (replicated read, black holes)
"""

from .archive import ArchiveUploader, WanConfig, WanLink
from .chimera import (
    DagDispatcher,
    DagStats,
    Task,
    TaskDAG,
    bag_of_tasks,
    chain,
    layered_dag,
)
from .condor import CondorConfig, CondorWorld, Schedd, register_condor_commands
from .fdtable import FDTable
from .pool import Job, Worker, WorkerPool
from .httpserver import (
    FileServer,
    ReplicaConfig,
    ReplicaWorld,
    register_replica_commands,
)
from .storage import (
    BufferConfig,
    BufferFile,
    BufferWorld,
    SharedBuffer,
    consumer_process,
    register_buffer_commands,
)

__all__ = [
    "ArchiveUploader",
    "BufferConfig",
    "Job",
    "WanConfig",
    "WanLink",
    "Worker",
    "WorkerPool",
    "DagDispatcher",
    "DagStats",
    "Task",
    "TaskDAG",
    "bag_of_tasks",
    "chain",
    "layered_dag",
    "BufferFile",
    "BufferWorld",
    "CondorConfig",
    "CondorWorld",
    "FDTable",
    "FileServer",
    "ReplicaConfig",
    "ReplicaWorld",
    "Schedd",
    "SharedBuffer",
    "consumer_process",
    "register_buffer_commands",
    "register_condor_commands",
    "register_replica_commands",
]
