"""A shared filesystem output buffer (paper scenario 2, Figures 4-5).

Producers running in a remote cluster drop output files of unknown size
into a 120 MB shared buffer; a consumer drains completed files at
1 MB/s and deletes them (a Kangaroo-style staging spool).  A write that
hits ENOSPC mid-file deletes its partial output — a **collision** — and
the client applies its retry discipline.

The Ethernet client's carrier sense is the paper's estimator:

    "the Ethernet client assumes the incomplete items in the buffer will
    be the same size as the average of the complete files, and subtracts
    that from the free disk space reported by the file system."

Files are written in chunks, so two producers can interleave and race
the remaining space — collisions are a real concurrency outcome here,
not a coin flip.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from ..core.errors import SimulationError
from ..faults.config import validate_non_negative, validate_positive
from ..obs.api import NULL_OBS
from ..sim.engine import Engine
from ..sim.events import Interrupt
from ..sim.monitor import Counter, TimeSeries
from ..sim.resources import Resource
from ..simruntime.registry import CommandContext, CommandRegistry


@dataclass(frozen=True, slots=True)
class BufferConfig:
    """Scenario tunables (paper values where the paper gives them)."""

    capacity_mb: float = 120.0
    consumer_rate_mb_s: float = 1.0       # paper: reads at 1 MB/s
    disk_rate_mb_s: float = 5.0           # the file server's total IO bandwidth
    file_min_mb: float = 0.0              # paper: size random in 0-1 MB
    file_max_mb: float = 1.0
    production_time: float = 1.0          # paper: one file every second
    write_chunk_mb: float = 0.125         # IO granularity (space claims + disk ops)
    consumer_poll: float = 0.25           # idle consumer re-check period
    open_overhead: float = 0.05           # per-attempt create/delete cost
    #: Service time of one reservation RPC at the allocation server
    #: (NeST/SRB/SRM-style space allocation, paper §5 discussion).
    alloc_rpc_time: float = 0.5


@dataclass(slots=True)
class BufferFile:
    """One file in the buffer."""

    name: str
    size_mb: float = 0.0
    goal_mb: float = 0.0
    complete: bool = False


class DiskIO:
    """The file server's IO path: chunk-granular round-robin sharing.

    Every read or write moves through one queue at
    :attr:`BufferConfig.disk_rate_mb_s` total; with N active streams each
    gets roughly a 1/N share.  This is the resource that write-thrash
    actually burns: bandwidth spent on partial files that will be deleted
    is bandwidth the consumer never gets (the mechanism behind Figure 4's
    collapse of the fixed and Aloha lines).
    """

    def __init__(self, engine: Engine, rate_mb_s: float) -> None:
        validate_positive("disk rate_mb_s", rate_mb_s)
        self.engine = engine
        self.rate_mb_s = rate_mb_s
        #: Degradation hook: IO takes ``slowdown`` times longer while a
        #: :class:`repro.faults.injectors.SlowDiskInjector` window is open.
        self.slowdown = 1.0
        self._queue = Resource(engine, capacity=1)

    def io(self, mb: float):
        """Transfer ``mb`` through the disk (one queued chunk op)."""
        request = self._queue.request()
        try:
            yield request
            yield self.engine.timeout(mb / self.rate_mb_s * self.slowdown)
        finally:
            self._queue.release(request)


class SharedBuffer:
    """The 120 MB spool directory, with atomic-rename completion."""

    def __init__(
        self,
        engine: Engine,
        config: BufferConfig | None = None,
        obs: Any = None,
    ) -> None:
        self.engine = engine
        self.config = config or BufferConfig()
        self.disk = DiskIO(engine, self.config.disk_rate_mb_s)
        self.files: dict[str, BufferFile] = {}
        self._used = 0.0
        #: Space taken by a fault injector (a noisy neighbour filling the
        #: spool); counts against capacity exactly like written bytes.
        self.seized_mb = 0.0
        self._done_order: list[str] = []
        self.collisions = Counter(engine, "collisions")
        self.files_consumed = Counter(engine, "files-consumed")
        self.mb_consumed = 0.0
        self.mb_written = 0.0
        self.mb_wasted = 0.0  # partial bytes deleted on collision
        self.free_series: Optional[TimeSeries] = None
        self._names = itertools.count(1)
        #: client -> reserved-but-unwritten megabytes (counted in _used).
        self.reservations: dict[str, float] = {}
        self.reservations_made = Counter(engine, "reservations",
                                         keep_series=False)
        self.reservations_denied = Counter(engine, "reservations-denied",
                                           keep_series=False)
        #: Telemetry mirror (collision/consumption counters, live gauges).
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_collisions = metrics.counter(
            "grid_buffer_collisions_total", "partial files deleted on ENOSPC")
        self._m_consumed = metrics.counter(
            "grid_buffer_files_consumed_total", "files drained by the consumer")
        self._m_reservations = metrics.counter(
            "grid_buffer_reservations_total", "space reservations granted")
        self._m_denied = metrics.counter(
            "grid_buffer_reservations_denied_total", "space reservations denied")
        metrics.gauge(
            "grid_buffer_free_mb", "raw free space in the shared buffer"
        ).set_function(lambda: self.free_mb)
        metrics.gauge(
            "grid_buffer_files", "files (complete + partial) in the buffer"
        ).set_function(lambda: float(len(self.files)))

    # -- filesystem-visible state ---------------------------------------
    @property
    def used_mb(self) -> float:
        return self._used

    @property
    def free_mb(self) -> float:
        """What ``df`` reports: raw free space, partial files included."""
        return self.config.capacity_mb - self._used - self.seized_mb

    def incomplete_count(self) -> int:
        return sum(1 for f in self.files.values() if not f.complete)

    def complete_sizes(self) -> list[float]:
        return [f.goal_mb for f in self.files.values() if f.complete]

    def estimate_free_mb(self) -> float:
        """The Ethernet client's carrier sense, exactly as the paper states:

            "the Ethernet client assumes the incomplete items in the
            buffer will be the same size as the average of the complete
            files, and subtracts that from the free disk space reported
            by the file system."

        One full average is subtracted per incomplete item (deliberately
        conservative: the partially-written bytes are also still counted
        in ``used``).  With no completed files to average, fall back to
        the expected file size (uniform 0-1 MB -> 0.5 MB).
        """
        done = self.complete_sizes()
        average = sum(done) / len(done) if done else (
            (self.config.file_min_mb + self.config.file_max_mb) / 2.0
        )
        return self.free_mb - self.incomplete_count() * average

    # -- writer API -------------------------------------------------------
    def create(self, goal_mb: float) -> BufferFile:
        name = f"out.{next(self._names)}"
        entry = BufferFile(name=name, goal_mb=goal_mb)
        self.files[name] = entry
        return entry

    def grow(self, entry: BufferFile, chunk_mb: float) -> bool:
        """Append ``chunk_mb``; False = ENOSPC (caller must delete)."""
        if entry.name not in self.files:
            raise SimulationError(f"grow() on deleted file {entry.name}")
        if self._used + self.seized_mb + chunk_mb > self.config.capacity_mb:
            return False
        self._used += chunk_mb
        entry.size_mb += chunk_mb
        self.mb_written += chunk_mb
        self._note()
        return True

    def finish(self, entry: BufferFile) -> None:
        """Atomic rename to ``x.done`` — the consumer may now take it."""
        entry.complete = True
        self._done_order.append(entry.name)

    def delete(self, entry: BufferFile, collided: bool = False) -> None:
        """Remove a (possibly partial) file, freeing its bytes."""
        if self.files.pop(entry.name, None) is None:
            return
        # Clamp: repeated float adds/subtracts can drift a hair below zero.
        self._used = max(self._used - entry.size_mb, 0.0)
        if collided:
            self.collisions.increment()
            self._m_collisions.inc()
            self.mb_wasted += entry.size_mb
        if entry.complete and entry.name in self._done_order:
            self._done_order.remove(entry.name)
        self._note()

    # -- reservation API (NeST/SRB/SRM-style allocation, paper §5) ----------
    def reserve_space(self, client: str, mb: float) -> bool:
        """Atomically set aside ``mb`` for ``client``; False if it won't fit.

        Reserved space counts as used immediately — that is the whole
        point of a reservation: nobody else can take it.
        """
        validate_non_negative("reservation mb", mb)
        if self._used + self.seized_mb + mb > self.config.capacity_mb:
            self.reservations_denied.increment()
            self._m_denied.inc()
            return False
        self._used += mb
        self.reservations[client] = self.reservations.get(client, 0.0) + mb
        self.reservations_made.increment()
        self._m_reservations.inc()
        self._note()
        return True

    def write_reserved(self, client: str, entry: BufferFile, chunk_mb: float) -> bool:
        """Move ``chunk_mb`` from the client's reservation into ``entry``.

        Cannot hit ENOSPC — the space was committed at reservation time.
        Returns False only if the reservation is too small (caller bug or
        under-reservation)."""
        held = self.reservations.get(client, 0.0)
        if held + 1e-9 < chunk_mb:
            return False
        self.reservations[client] = held - chunk_mb
        entry.size_mb += chunk_mb
        self.mb_written += chunk_mb
        return True

    def release_reservation(self, client: str) -> None:
        """Return a client's unwritten reservation to the free pool."""
        held = self.reservations.pop(client, 0.0)
        if held > 0:
            self._used = max(self._used - held, 0.0)
            self._note()

    def total_reserved(self) -> float:
        return sum(self.reservations.values())

    # -- fault hooks (ENOSPC pressure from outside the scenario) ------------
    def seize(self, mb: float) -> float:
        """Take up to ``mb`` off the free pool; returns what was taken.

        The hook behind :class:`repro.faults.injectors.EnospcInjector`:
        clamped to the currently free space so seizing never corrupts
        accounting, and visible to ``df`` and the Ethernet estimator
        exactly like any other resident bytes.
        """
        taken = min(max(self.free_mb, 0.0), max(mb, 0.0))
        self.seized_mb += taken
        self._note()
        return taken

    def release_seized(self, mb: float) -> None:
        """Return previously seized space to the free pool."""
        self.seized_mb = max(self.seized_mb - mb, 0.0)
        self._note()

    # -- consumer API -------------------------------------------------------
    def oldest_done(self) -> Optional[BufferFile]:
        while self._done_order:
            name = self._done_order[0]
            entry = self.files.get(name)
            if entry is not None:
                return entry
            self._done_order.pop(0)  # pragma: no cover - defensive
        return None

    def _note(self) -> None:
        if self.free_series is not None:
            self.free_series.record(self.engine.now, self.free_mb)


def consumer_process(buffer: SharedBuffer):
    """The draining process: oldest ``.done`` file, 1 MB/s, then delete."""
    config = buffer.config
    engine = buffer.engine
    while True:
        entry = buffer.oldest_done()
        if entry is None:
            yield engine.timeout(config.consumer_poll)
            continue
        remaining = entry.size_mb
        while remaining > 1e-12:
            chunk = min(config.write_chunk_mb, remaining)
            started = engine.now
            yield from buffer.disk.io(chunk)
            # Pace to the consumer's own 1 MB/s ceiling: the disk may be
            # faster than the paper's drain rate when uncontended.
            pace = chunk / config.consumer_rate_mb_s - (engine.now - started)
            if pace > 0:
                yield engine.timeout(pace)
            remaining -= chunk
        buffer.mb_consumed += entry.size_mb
        buffer.delete(entry)
        buffer.files_consumed.increment()
        buffer._m_consumed.inc()


class BufferWorld:
    """Scenario 2's shared state, plus per-client pending file sizes."""

    def __init__(
        self,
        engine: Engine,
        config: BufferConfig | None = None,
        obs: Any = None,
    ) -> None:
        self.engine = engine
        self.config = config or BufferConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.buffer = SharedBuffer(engine, self.config, obs=self.obs)
        #: The allocation server: one reservation RPC at a time — "the
        #: actual process of allocation itself may be subject to
        #: contention" (paper §5).
        self.alloc_server = Resource(engine, capacity=1)
        #: Cumulative time producers spent queued for the allocator.
        self.alloc_wait_total = 0.0
        #: client name -> size of the output it produced and wants stored.
        self.pending_outputs: dict[str, float] = {}

    def start_consumer(self) -> None:
        self.engine.process(consumer_process(self.buffer), name="consumer")


def register_buffer_commands(registry: CommandRegistry, world: BufferWorld) -> None:
    """ftsh-visible commands for the producer scripts.

    * ``produce_output <size_mb>`` — spend production time creating the
      job's output (the size is decided by the harness per cycle).
    * ``store_output`` — write the pending output into the buffer in
      chunks; ENOSPC deletes the partial file and exits 1 (a collision).
    * ``df_estimate`` — Ethernet carrier sense; prints the estimated
      usable space (may be negative).
    * ``df_free`` — raw free space, for comparison/ablation.
    """

    engine = world.engine
    buffer = world.buffer
    config = world.config

    @registry.register("produce_output")
    def produce_output(ctx: CommandContext):
        size = float(ctx.args[0])
        if size < 0:
            return 1
        yield engine.timeout(config.production_time)
        world.pending_outputs[ctx.client] = size
        return 0

    @registry.register("store_output")
    def store_output(ctx: CommandContext):
        size = world.pending_outputs.get(ctx.client)
        if size is None:
            return 1  # nothing produced yet: script bug, fail fast
        yield engine.timeout(config.open_overhead)
        entry = buffer.create(goal_mb=size)
        try:
            remaining = size
            while remaining > 1e-12:
                chunk = min(config.write_chunk_mb, remaining)
                if not buffer.grow(entry, chunk):
                    buffer.delete(entry, collided=True)
                    entry = None
                    return 1
                remaining -= chunk
                yield from buffer.disk.io(chunk)
            buffer.finish(entry)
            entry = None
            world.pending_outputs.pop(ctx.client, None)
            return 0
        except Interrupt:
            # Deadline kill mid-write: the partial file is deleted by the
            # retry logic in the paper's setup ("If the output cannot be
            # written, it is deleted").
            if entry is not None:
                buffer.delete(entry, collided=True)
            return 1

    @registry.register("reserve_output")
    def reserve_output(ctx: CommandContext):
        """NeST-style space allocation: queue for the allocator, reserve."""
        size = world.pending_outputs.get(ctx.client)
        if size is None:
            return 1
        request = world.alloc_server.request()
        queued_at = engine.now
        try:
            yield request
            world.alloc_wait_total += engine.now - queued_at
            yield engine.timeout(config.alloc_rpc_time)
            return 0 if buffer.reserve_space(ctx.client, size) else 1
        except Interrupt:
            return 1
        finally:
            world.alloc_server.release(request)

    @registry.register("store_reserved")
    def store_reserved(ctx: CommandContext):
        """Write the pending output into space reserved beforehand."""
        size = world.pending_outputs.get(ctx.client)
        if size is None:
            return 1
        if buffer.reservations.get(ctx.client, 0.0) + 1e-9 < size:
            return 1  # no (or insufficient) reservation
        yield engine.timeout(config.open_overhead)
        entry = buffer.create(goal_mb=0.0)
        entry.goal_mb = size
        try:
            remaining = size
            while remaining > 1e-12:
                chunk = min(config.write_chunk_mb, remaining)
                if not buffer.write_reserved(ctx.client, entry, chunk):
                    buffer.delete(entry, collided=True)
                    buffer.release_reservation(ctx.client)
                    return 1  # pragma: no cover - guarded above
                remaining -= chunk
                yield from buffer.disk.io(chunk)
            buffer.finish(entry)
            world.pending_outputs.pop(ctx.client, None)
            buffer.release_reservation(ctx.client)  # rounding leftovers
            return 0
        except Interrupt:
            buffer.delete(entry, collided=True)
            buffer.release_reservation(ctx.client)
            return 1

    @registry.register("df_estimate")
    def df_estimate(ctx: CommandContext):
        return 0, f"{buffer.estimate_free_mb():.6f}\n"
        yield  # pragma: no cover - generator marker

    @registry.register("df_free")
    def df_free(ctx: CommandContext):
        return 0, f"{buffer.free_mb:.6f}\n"
        yield  # pragma: no cover - generator marker
