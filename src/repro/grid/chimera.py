"""A Chimera-like DAG workflow manager (paper §5 motivation).

    "We expect that large numbers of submitters will compete for a schedd
    in systems such as Chimera, which manage large trees of dependent
    tasks for a user, dispatching new jobs as old ones complete."

This module supplies that workload: a :class:`TaskDAG` of dependent
tasks and a :class:`DagDispatcher` that submits every *ready* task
through the client discipline's ftsh script.  Completing a layer of a
wide DAG releases its dependents simultaneously — exactly the correlated
burst the Ethernet approach exists to absorb.  The interesting measure
is **makespan**: a discipline that crashes the schedd pays for it in
wall-clock time to finish the workflow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..clients.base import Discipline
from ..clients.scripts import submit_script
from ..core.errors import SimulationError
from ..core.compile import compilation_enabled, compile_cached
from ..core.parser import parse_cached
from ..sim.engine import Engine
from ..sim.process import Process
from ..simruntime.registry import CommandRegistry
from ..simruntime.shell import SimFtsh
from .condor import CondorWorld
from .pool import WorkerPool


@dataclass(frozen=True, slots=True)
class Task:
    """One node of the workflow."""

    name: str
    deps: tuple[str, ...] = ()
    exec_time: float = 30.0


class TaskDAG:
    """Dependency bookkeeping: which tasks are ready, which are done."""

    def __init__(self, tasks: Iterable[Task]) -> None:
        self.tasks: dict[str, Task] = {}
        for task in tasks:
            if task.name in self.tasks:
                raise SimulationError(f"duplicate task {task.name!r}")
            self.tasks[task.name] = task
        for task in self.tasks.values():
            for dep in task.deps:
                if dep not in self.tasks:
                    raise SimulationError(
                        f"task {task.name!r} depends on unknown {dep!r}"
                    )
        self._done: set[str] = set()
        self._dispatched: set[str] = set()
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: dict[str, int] = {}

        def visit(name: str) -> None:
            if state.get(name) == 1:
                raise SimulationError(f"dependency cycle through {name!r}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for dep in self.tasks[name].deps:
                visit(dep)
            state[name] = 2

        for name in self.tasks:
            visit(name)

    # ------------------------------------------------------------------
    def ready(self) -> list[Task]:
        """Tasks whose dependencies are all done and which have not been
        handed to a dispatcher yet, in stable name order."""
        out = []
        for name in sorted(self.tasks):
            if name in self._dispatched or name in self._done:
                continue
            task = self.tasks[name]
            if all(dep in self._done for dep in task.deps):
                out.append(task)
        return out

    def mark_dispatched(self, name: str) -> None:
        self._dispatched.add(name)

    def unmark_dispatched(self, name: str) -> None:
        """Give a task back (its submission ultimately failed)."""
        self._dispatched.discard(name)

    def complete(self, name: str) -> None:
        self._done.add(name)
        self._dispatched.discard(name)

    @property
    def done_count(self) -> int:
        return len(self._done)

    def all_done(self) -> bool:
        return len(self._done) == len(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)


# ---------------------------------------------------------------------------
# Workload shapes
# ---------------------------------------------------------------------------

def bag_of_tasks(count: int, exec_time: float = 30.0, prefix: str = "t") -> TaskDAG:
    """No dependencies: the maximal thundering herd."""
    return TaskDAG(Task(f"{prefix}{i}", (), exec_time) for i in range(count))


def chain(length: int, exec_time: float = 30.0, prefix: str = "t") -> TaskDAG:
    """A strict pipeline: one ready task at a time."""
    tasks = []
    for i in range(length):
        deps = (f"{prefix}{i - 1}",) if i else ()
        tasks.append(Task(f"{prefix}{i}", deps, exec_time))
    return TaskDAG(tasks)


def layered_dag(
    layers: int,
    width: int,
    rng: Optional[random.Random] = None,
    fan_in: int = 2,
    exec_time_range: tuple[float, float] = (15.0, 45.0),
    prefix: str = "t",
) -> TaskDAG:
    """A layered random DAG: each task depends on up to ``fan_in`` tasks
    of the previous layer.  Finishing a layer releases the next one in a
    burst — the Chimera pattern."""
    rng = rng or random.Random(0)
    tasks: list[Task] = []
    previous: list[str] = []
    for layer in range(layers):
        current: list[str] = []
        for index in range(width):
            name = f"{prefix}L{layer}.{index}"
            if previous:
                k = min(len(previous), rng.randint(1, fan_in))
                deps = tuple(sorted(rng.sample(previous, k)))
            else:
                deps = ()
            tasks.append(
                Task(name, deps, rng.uniform(*exec_time_range))
            )
            current.append(name)
        previous = current
    return TaskDAG(tasks)


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class DagStats:
    """What one dispatcher run measured."""

    makespan: float = 0.0
    tasks_done: int = 0
    submissions_attempted: int = 0
    finished: bool = False


class DagDispatcher:
    """Submits ready tasks through the discipline's ftsh script.

    One dispatcher models one Chimera-style user agent: up to
    ``max_inflight`` submission shells at once, each retrying per the
    discipline until the schedd accepts the job; the job then executes on
    the (uncontended) pool for its ``exec_time`` and completes, releasing
    dependents.
    """

    def __init__(
        self,
        engine: Engine,
        registry: CommandRegistry,
        world: CondorWorld,
        dag: TaskDAG,
        discipline: Discipline,
        rng: Optional[random.Random] = None,
        name: str = "dag",
        max_inflight: int = 50,
        submit_window: float = 300.0,
        carrier_threshold: int = 1000,
        poll_interval: float = 1.0,
        deadline: float = 1e9,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.world = world
        self.dag = dag
        self.discipline = discipline
        self.rng = rng if rng is not None else engine.streams.stream("dag-dispatcher")
        self.name = name
        self.max_inflight = max_inflight
        self.poll_interval = poll_interval
        self.deadline = deadline
        #: When given, accepted jobs execute on this shared pool (queueing
        #: for machines); otherwise each runs for its own exec_time.
        self.pool = pool
        self.stats = DagStats()
        self._inflight = 0
        self._script = parse_cached(
            submit_script(discipline, window=submit_window,
                          carrier_threshold=carrier_threshold)
        )
        if compilation_enabled():
            # Every task submission re-enters one shared compiled plan.
            self._script = compile_cached(self._script)
        self._shells = 0

    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the dispatcher as a sim process; its value is DagStats."""
        return self.engine.process(self._run(), name=f"{self.name}-dispatcher")

    def _run(self):
        start_time = self.engine.now
        while not self.dag.all_done() and self.engine.now < self.deadline:
            for task in self.dag.ready():
                if self._inflight >= self.max_inflight:
                    break
                self.dag.mark_dispatched(task.name)
                self._inflight += 1
                self.engine.process(
                    self._submit_and_execute(task),
                    name=f"{self.name}:{task.name}",
                )
            yield self.engine.timeout(self.poll_interval)
        self.stats.makespan = self.engine.now - start_time
        self.stats.tasks_done = self.dag.done_count
        self.stats.finished = self.dag.all_done()
        return self.stats

    def _submit_and_execute(self, task: Task):
        """One task's life: submit (with retries) then run on the pool."""
        self._shells += 1
        shell = SimFtsh(
            self.engine,
            self.registry,
            world=self.world,
            rng=random.Random(self.rng.getrandbits(64)),
            policy=self.discipline.policy,
            name=f"{self.name}:{task.name}",
        )
        try:
            while self.engine.now < self.deadline:
                self.stats.submissions_attempted += 1
                process = shell.spawn(
                    self._script, timeout=self.deadline - self.engine.now
                )
                result = yield process
                if result.success:
                    # Accepted: the job executes and completes.
                    if self.pool is not None:
                        job = self.pool.submit(task.exec_time)
                        yield job.done
                    else:
                        yield self.engine.timeout(task.exec_time)
                    self.dag.complete(task.name)
                    return
            self.dag.unmark_dispatched(task.name)
        finally:
            self._inflight -= 1
