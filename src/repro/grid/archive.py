"""The Kangaroo stage: moving buffered output to a remote archive.

Scenario 2's consumer "collects the outputs and transmits them off to a
remote archive in a manner similar to that of Kangaroo" (paper §5,
citing Thain et al., HPDC 2001).  This module models that second hop:

* a :class:`WanLink` with limited bandwidth and scheduled/random
  **outages** — the wide-area failures Kangaroo exists to absorb;
* an :class:`ArchiveUploader` that drains completed files from the
  shared buffer and pushes them over the link, applying its *own*
  Ethernet-style backoff when the WAN fails mid-transfer.

The buffer becomes what Kangaroo calls a hop: during an outage it fills
and producers feel ENOSPC backpressure; when the link returns, the
uploader works the backlog off.  End-to-end delivered megabytes — not
local buffer throughput — is the honest metric of the whole pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.backoff import BackoffPolicy, BackoffState, PAPER_POLICY
from ..faults.config import validate_positive
from ..faults.schedule import FaultSchedule, PoissonOutage, drive_schedule
from ..sim.engine import Engine
from ..sim.events import Interrupt
from ..sim.monitor import Counter
from .storage import SharedBuffer


@dataclass(frozen=True, slots=True)
class WanConfig:
    """Wide-area link parameters."""

    bandwidth_mb_s: float = 2.0
    #: Mean seconds between outages (exponential); 0 disables outages.
    mean_time_between_outages: float = 120.0
    #: Mean outage duration (exponential).
    mean_outage_duration: float = 30.0


class WanLink:
    """A lossy wide-area link: up/down state driven by a failure process.

    A transfer in progress when the link drops **fails** (the uploader
    sees it and must retry); the partial upload is wasted WAN time, like
    a TCP connection reset mid-stream.
    """

    def __init__(
        self,
        engine: Engine,
        config: WanConfig | None = None,
        rng: Optional[random.Random] = None,
        outages_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self.engine = engine
        self.config = config or WanConfig()
        validate_positive("wan bandwidth_mb_s", self.config.bandwidth_mb_s)
        self.rng = rng if rng is not None else engine.streams.stream("wan")
        self.up = True
        self.outages = Counter(engine, "wan-outages")
        #: Transfers the link killed mid-stream.
        self.broken_transfers = Counter(engine, "wan-broken", keep_series=False)
        self._active: list = []  # processes currently transferring
        #: The weather: by default the memoryless outage process the
        #: config describes, now expressed as a standard fault schedule.
        #: Pass ``outages_schedule`` to pin outages deterministically, or
        #: set ``mean_time_between_outages=0`` and drive the link from a
        #: :class:`repro.faults.injectors.WanPartitionInjector` instead.
        if outages_schedule is None and self.config.mean_time_between_outages > 0:
            outages_schedule = PoissonOutage(
                self.config.mean_time_between_outages,
                self.config.mean_outage_duration,
            )
        if outages_schedule is not None:
            engine.process(
                drive_schedule(
                    engine, outages_schedule, self.rng,
                    lambda window: self.fail("wan outage"),
                    lambda window: self.restore(),
                ),
                name="wan-weather",
            )

    # -- failure hooks (also the injector surface) ----------------------
    def fail(self, cause: str = "wan outage") -> None:
        """Take the link down, killing transfers in flight; idempotent."""
        if not self.up:
            return
        self.up = False
        self.outages.increment()
        for process in list(self._active):
            if process.is_alive:
                process.interrupt(cause)

    def restore(self) -> None:
        """Bring the link back up; idempotent."""
        self.up = True

    def transfer(self, mb: float):
        """Move ``mb`` across the link; raises Interrupt on outage
        (caller catches), returns False immediately if the link is down."""
        if not self.up:
            return False
        process = self.engine.active_process
        self._active.append(process)
        try:
            yield self.engine.timeout(mb / self.config.bandwidth_mb_s)
            return True
        except Interrupt:
            self.broken_transfers.increment()
            raise
        finally:
            self._active.remove(process)


class ArchiveUploader:
    """Drains the buffer's completed files over the WAN with backoff.

    This is the consumer of scenario 2 grown up: reading the local file
    still costs disk bandwidth (shared with the producers), and the
    remote push can fail — in which case the file *stays in the buffer*
    (Kangaroo's reliability guarantee) and the uploader backs off.
    """

    def __init__(
        self,
        buffer: SharedBuffer,
        link: WanLink,
        policy: BackoffPolicy = PAPER_POLICY,
        rng: Optional[random.Random] = None,
        poll: float = 0.25,
    ) -> None:
        self.buffer = buffer
        self.link = link
        self.policy = policy
        self.engine = buffer.engine
        self.rng = (rng if rng is not None
                    else self.engine.streams.stream("archive-uploader"))
        self.poll = poll
        self.mb_delivered = 0.0
        self.files_delivered = Counter(self.engine, "files-delivered")
        self.upload_failures = Counter(self.engine, "upload-failures",
                                       keep_series=False)

    def start(self):
        return self.engine.process(self._run(), name="archive-uploader")

    def _run(self):
        backoff = BackoffState(self.policy)
        while True:
            entry = self.buffer.oldest_done()
            if entry is None:
                yield self.engine.timeout(self.poll)
                continue
            # Read the file locally (shares the disk with producers).
            remaining = entry.size_mb
            while remaining > 1e-12:
                chunk = min(self.buffer.config.write_chunk_mb, remaining)
                yield from self.buffer.disk.io(chunk)
                remaining -= chunk
            # Push it over the WAN.
            try:
                sent = yield from self.link.transfer(entry.size_mb)
            except Interrupt:
                sent = False
            if sent:
                backoff.reset()
                self.mb_delivered += entry.size_mb
                self.buffer.mb_consumed += entry.size_mb
                self.buffer.delete(entry)
                self.buffer.files_consumed.increment()
                self.files_delivered.increment()
            else:
                # The file stays buffered; wait out the weather politely.
                self.upload_failures.increment()
                yield self.engine.timeout(backoff.next_delay(self.rng.random))
