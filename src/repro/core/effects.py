"""The sans-IO effect protocol between the interpreter and its drivers.

The interpreter (:mod:`repro.core.interpreter`) is a generator that yields
effect requests and receives effect results; it never touches the clock,
the OS, or the simulator directly.  Two drivers exist:

* :class:`repro.core.realruntime.RealDriver` — wall clock + subprocesses;
* :class:`repro.simruntime.SimDriver` — virtual time + simulated commands.

Deadlines are *absolute* times in the driver's clock.  ``UNBOUNDED``
(= +inf) means no limit.  A driver must guarantee: an operation given
deadline D either completes before D or returns with ``timed_out=True``
as soon after D as the driver can manage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from .timeline import UNBOUNDED

#: The generator type the drivers consume.
EffectGenerator = Generator["Effect", Any, Any]


@dataclass(slots=True)
class RunCommand:
    """Execute an external (or simulated) command.

    ``capture`` asks the driver to return the command's stdout (plus
    stderr when ``merge_stderr``) in :attr:`CommandResult.output` instead
    of letting it flow to the shell's own stdout.
    """

    argv: list[str]
    stdin_data: Optional[str] = None
    stdin_file: Optional[str] = None
    stdout_file: Optional[str] = None
    stdout_append: bool = False
    merge_stderr: bool = False
    capture: bool = False
    deadline: float = UNBOUNDED


@dataclass(slots=True)
class CommandResult:
    """Outcome of a :class:`RunCommand`."""

    exit_code: int
    output: Optional[str] = None
    timed_out: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.exit_code == 0 and not self.timed_out


@dataclass(slots=True)
class Sleep:
    """Pause for ``duration`` seconds, but never past ``deadline``."""

    duration: float
    deadline: float = UNBOUNDED


@dataclass(slots=True)
class SleepResult:
    """``timed_out`` is True when the deadline cut the sleep short."""

    slept: float
    timed_out: bool = False


@dataclass(slots=True)
class GetTime:
    """Ask the driver for the current time (driver's clock)."""


@dataclass(slots=True)
class GetRandom:
    """Ask the driver for one U[0,1) float (for backoff jitter)."""


@dataclass(slots=True)
class ParallelBranch:
    """One ``forall`` branch: a ready-to-drive effect generator."""

    name: str
    generator: EffectGenerator


@dataclass(slots=True)
class RunParallel:
    """Run branches concurrently; cancel the rest after the first failure.

    The driver must drive every branch generator to completion (normal
    return, control exception, or cancellation) and report per-branch
    outcomes in order: ``None`` for success, the exception otherwise.
    """

    branches: list[ParallelBranch]
    deadline: float = UNBOUNDED


@dataclass(slots=True)
class ParallelResult:
    outcomes: list[Optional[BaseException]] = field(default_factory=list)


Effect = RunCommand | Sleep | GetTime | GetRandom | RunParallel
