"""Variable scopes and word expansion.

A script runs in one flat scope; ``forall`` branches get child scopes so
parallel writes cannot race each other (each branch sees the parent's
bindings but writes locally — documented divergence-safe semantics).

Expansion of an undefined variable raises
:class:`~repro.core.errors.UndefinedVariableError`, which is an ordinary
ftsh *failure*: an enclosing ``try`` may retry it, which matters when the
variable is assigned by a redirection that failed last attempt.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from .errors import UndefinedVariableError
from .tokens import Literal, VarRef, Word


@dataclass(frozen=True, slots=True)
class SpoolPolicy:
    """Where large variable values live (paper §4: redirected values "may
    be stored in the shell's memory directly, or may be kept in an
    appropriate place in the filesystem according to the user's or
    administrator's policy").

    Values longer than ``threshold`` bytes are written to files under
    ``directory`` and read back on expansion.
    """

    directory: str
    threshold: int = 65536


class _Spilled:
    """Marker binding: the value lives in ``path`` on disk."""

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def read(self) -> str:
        with open(self.path, encoding="utf-8") as handle:
            return handle.read()


_spill_ids = itertools.count(1)


class Scope:
    """A chain-of-maps variable scope: reads climb, writes stay local."""

    __slots__ = ("_bindings", "parent", "spool")

    def __init__(
        self,
        initial: Optional[Mapping[str, str]] = None,
        parent: Optional["Scope"] = None,
        spool: Optional[SpoolPolicy] = None,
    ) -> None:
        self._bindings: dict[str, object] = dict(initial or {})
        self.parent = parent
        #: Inherited from the parent chain when not set explicitly.
        self.spool = spool if spool is not None else (
            parent.spool if parent is not None else None
        )

    def get(self, name: str) -> str:
        scope: Scope | None = self
        while scope is not None:
            if name in scope._bindings:
                value = scope._bindings[name]
                return value.read() if isinstance(value, _Spilled) else value
            scope = scope.parent
        raise UndefinedVariableError(name)

    def lookup(self, name: str, default: str | None = None) -> str | None:
        """Like :meth:`get` but returning ``default`` instead of failing."""
        try:
            return self.get(name)
        except UndefinedVariableError:
            return default

    def set(self, name: str, value: str) -> None:
        if self.spool is not None and len(value) > self.spool.threshold:
            os.makedirs(self.spool.directory, exist_ok=True)
            path = os.path.join(
                self.spool.directory, f"ftsh-var-{name}-{next(_spill_ids)}"
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(value)
            self._bindings[name] = _Spilled(path)
            return
        self._bindings[name] = value

    def unset(self, name: str) -> None:
        """Remove a binding from this scope level (no-op if absent here)."""
        self._bindings.pop(name, None)

    def append(self, name: str, value: str) -> None:
        """Append for the ``->>`` variable redirection."""
        self._bindings[name] = self.lookup(name, "") + value

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "Scope":
        return Scope(parent=self)

    def flatten(self) -> dict[str, str]:
        """All visible bindings, innermost winning."""
        chain: list[Scope] = []
        scope: Scope | None = self
        while scope is not None:
            chain.append(scope)
            scope = scope.parent
        merged: dict[str, str] = {}
        for scope in reversed(chain):
            for name, value in scope._bindings.items():
                merged[name] = value.read() if isinstance(value, _Spilled) else value
        return merged

    def names(self) -> Iterator[str]:
        return iter(self.flatten())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Scope {self._bindings!r} parent={self.parent is not None}>"


def expand_word(word: Word, scope: Scope) -> str:
    """Expand every part of ``word`` into a single string."""
    chunks: list[str] = []
    for part in word.parts:
        if isinstance(part, VarRef):
            chunks.append(scope.get(part.name))
        else:
            chunks.append(part.text)
    return "".join(chunks)


def word_is_quoted(word: Word) -> bool:
    """True if any part of the word was quoted in the source."""
    return any(part.quoted for part in word.parts)


def expand_words(words: tuple[Word, ...], scope: Scope) -> list[str]:
    """Expand an argv.  A word that expands to the empty string is dropped
    unless it was quoted (shell-style elision, so ``$maybe_flag`` can
    legitimately vanish)."""
    argv: list[str] = []
    for word in words:
        text = expand_word(word, scope)
        if text or word_is_quoted(word):
            argv.append(text)
    return argv
