"""Post-mortem analysis of ftsh execution logs.

The paper, §4: "While executing a script, ftsh keeps a log of varying
detail about the program.  Online or post-mortem analysis may determine
more detailed reasons for process failure, the exact resources used to
execute the program, the frequency of each failure branch, and so forth."

:func:`analyze` digests a :class:`~repro.core.shell_log.ShellLog` into a
:class:`LogAnalysis`: per-command success/failure/timeout counts and
durations, backoff totals (the administrator's overload signal, §5),
``forany`` branch frequencies, and the retry depth of each ``try``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from .shell_log import EventKind, ShellLog


@dataclass(slots=True)
class CommandStats:
    """Aggregated outcomes of one command name."""

    name: str
    runs: int = 0
    succeeded: int = 0
    failed: int = 0
    timed_out: int = 0
    total_duration: float = 0.0
    _timed_runs: int = 0

    @property
    def failure_rate(self) -> float:
        return (self.failed + self.timed_out) / self.runs if self.runs else 0.0

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self._timed_runs if self._timed_runs else 0.0


@dataclass(slots=True)
class LogAnalysis:
    """The digest :func:`analyze` produces."""

    commands: dict[str, CommandStats] = field(default_factory=dict)
    #: forany variable=value -> times picked.
    branch_picks: dict[str, int] = field(default_factory=dict)
    backoff_count: int = 0
    backoff_total_wait: float = 0.0
    backoff_max_wait: float = 0.0
    try_attempts: int = 0
    try_successes: int = 0
    try_exhaustions: int = 0
    catches_entered: int = 0
    script_results: dict[str, int] = field(default_factory=dict)

    @property
    def overloaded(self) -> bool:
        """The administrator alarm: did any client have to back off?

        §5: "The initiation of Ethernet protocols to deal with contention
        should be logged and noted to administrators so that persistent
        overloads may be accommodated."
        """
        return self.backoff_count > 0

    def most_failing(self, limit: int = 5) -> list[CommandStats]:
        """Commands ranked by failure rate (ties by run count)."""
        ranked = sorted(
            (s for s in self.commands.values() if s.runs),
            key=lambda s: (-s.failure_rate, -s.runs),
        )
        return ranked[:limit]

    def report(self) -> str:
        """Human-readable digest."""
        lines = ["ftsh post-mortem analysis"]
        lines.append(
            f"  scripts: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.script_results.items()))
            if self.script_results
            else "  scripts: (none finished)"
        )
        lines.append(
            f"  try: attempts={self.try_attempts} successes={self.try_successes} "
            f"exhaustions={self.try_exhaustions} catches={self.catches_entered}"
        )
        lines.append(
            f"  backoff: initiations={self.backoff_count} "
            f"total_wait={self.backoff_total_wait:.3f}s "
            f"max_wait={self.backoff_max_wait:.3f}s "
            f"{'** OVERLOAD SIGNAL **' if self.overloaded else ''}".rstrip()
        )
        if self.commands:
            lines.append("  commands (name runs ok fail timeout fail% mean-s):")
            for stats in sorted(self.commands.values(), key=lambda s: -s.runs):
                lines.append(
                    f"    {stats.name:<24} {stats.runs:>6} {stats.succeeded:>6} "
                    f"{stats.failed:>6} {stats.timed_out:>7} "
                    f"{100 * stats.failure_rate:>5.1f} {stats.mean_duration:>7.3f}"
                )
        if self.branch_picks:
            lines.append("  forany branch frequencies:")
            for pick, count in sorted(self.branch_picks.items(),
                                      key=lambda kv: -kv[1]):
                lines.append(f"    {pick:<30} {count}")
        return "\n".join(lines)


def _command_name(detail: str) -> str:
    return detail.split(None, 1)[0] if detail else "?"


def analyze(log: ShellLog) -> LogAnalysis:
    """Digest ``log`` (see module docstring)."""
    analysis = LogAnalysis()
    #: command name -> stack of start times (commands can nest via forall).
    starts: dict[str, list[float]] = {}

    def stats_for(name: str) -> CommandStats:
        if name not in analysis.commands:
            analysis.commands[name] = CommandStats(name)
        return analysis.commands[name]

    for event in log.events:
        kind = event.kind
        if kind is EventKind.COMMAND_START:
            name = _command_name(event.detail)
            stats_for(name).runs += 1
            starts.setdefault(name, []).append(event.time)
        elif kind in (EventKind.COMMAND_END, EventKind.COMMAND_FAILED,
                      EventKind.COMMAND_TIMEOUT):
            name = _command_name(event.detail)
            stats = stats_for(name)
            if kind is EventKind.COMMAND_END:
                stats.succeeded += 1
            elif kind is EventKind.COMMAND_FAILED:
                stats.failed += 1
            else:
                stats.timed_out += 1
            pending = starts.get(name)
            if pending:
                stats.total_duration += event.time - pending.pop()
                stats._timed_runs += 1
        elif kind is EventKind.TRY_BACKOFF:
            analysis.backoff_count += 1
            if event.value is not None:
                analysis.backoff_total_wait += event.value
                analysis.backoff_max_wait = max(analysis.backoff_max_wait, event.value)
        elif kind is EventKind.TRY_ATTEMPT:
            analysis.try_attempts += 1
        elif kind is EventKind.TRY_SUCCESS:
            analysis.try_successes += 1
        elif kind is EventKind.TRY_EXHAUSTED:
            analysis.try_exhaustions += 1
        elif kind is EventKind.CATCH_ENTERED:
            analysis.catches_entered += 1
        elif kind is EventKind.FORANY_PICK:
            analysis.branch_picks[event.detail] = (
                analysis.branch_picks.get(event.detail, 0) + 1
            )
        elif kind is EventKind.SCRIPT_RESULT:
            verdict = event.detail.split(":", 1)[0]
            analysis.script_results[verdict] = (
                analysis.script_results.get(verdict, 0) + 1
            )
    return analysis
