"""Structured execution log.

The paper (§4): "While executing a script, ftsh keeps a log of varying
detail about the program.  Online or post-mortem analysis may determine
more detailed reasons for process failure, the exact resources used …,
the frequency of each failure branch, and so forth."  And §5: backoff
initiations "should be logged and noted to administrators so that
persistent overloads may be accommodated."

:class:`ShellLog` records typed events with timestamps from whatever
clock the driver uses.  It is append-only and cheap enough to leave on.
"""

from __future__ import annotations

import enum
from collections import Counter as _Counter
from dataclasses import dataclass
from typing import Callable, Iterator, Optional


#: Verbosity tiers for "a log of varying detail" (paper §4).  Each event
#: kind has a level; a ShellLog records only events at or below its own.
LOG_RESULTS = 0    # script results only
LOG_COMMANDS = 1   # + command lifecycle and construct outcomes
LOG_TRACE = 2      # + per-attempt detail (backoffs, picks, conditions)


class EventKind(enum.Enum):
    COMMAND_START = "command-start"
    COMMAND_END = "command-end"
    COMMAND_FAILED = "command-failed"
    COMMAND_TIMEOUT = "command-timeout"
    TRY_ATTEMPT = "try-attempt"
    TRY_BACKOFF = "try-backoff"       # the administrator-visible signal
    TRY_EXHAUSTED = "try-exhausted"
    TRY_SUCCESS = "try-success"
    CATCH_ENTERED = "catch-entered"
    FORANY_PICK = "forany-pick"
    FORALL_SPAWN = "forall-spawn"
    BRANCH_CANCELLED = "branch-cancelled"
    FAILURE_ATOM = "failure-atom"
    ASSIGNMENT = "assignment"
    CONDITION = "condition"
    SCRIPT_RESULT = "script-result"


#: EventKind -> verbosity tier.
_LEVELS: dict["EventKind", int] = {}


def _assign_levels() -> None:
    for kind in (EventKind.SCRIPT_RESULT,):
        _LEVELS[kind] = LOG_RESULTS
    for kind in (
        EventKind.COMMAND_START,
        EventKind.COMMAND_END,
        EventKind.COMMAND_FAILED,
        EventKind.COMMAND_TIMEOUT,
        EventKind.TRY_SUCCESS,
        EventKind.TRY_EXHAUSTED,
        EventKind.CATCH_ENTERED,
        EventKind.FAILURE_ATOM,
        EventKind.TRY_BACKOFF,   # the administrator overload signal
    ):
        _LEVELS[kind] = LOG_COMMANDS
    for kind in (
        EventKind.TRY_ATTEMPT,
        EventKind.FORANY_PICK,
        EventKind.FORALL_SPAWN,
        EventKind.BRANCH_CANCELLED,
        EventKind.ASSIGNMENT,
        EventKind.CONDITION,
    ):
        _LEVELS[kind] = LOG_TRACE


_assign_levels()


@dataclass(frozen=True, slots=True)
class LogEvent:
    time: float
    kind: EventKind
    detail: str = ""
    line: int = 0
    #: Optional numeric payload (e.g. a backoff delay in seconds),
    #: machine-readable for post-mortem analysis.
    value: Optional[float] = None

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.kind.value:<17} {self.detail}"


class ShellLog:
    """Append-only event log with counting helpers."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_events: int = 1_000_000,
        level: int = LOG_TRACE,
    ) -> None:
        #: Clock used to stamp events; drivers install theirs before running.
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.events: list[LogEvent] = []
        self.max_events = max_events
        #: Verbosity: LOG_RESULTS, LOG_COMMANDS, or LOG_TRACE (default).
        self.level = level
        self._dropped = 0

    def record(self, kind: EventKind, detail: str = "", line: int = 0,
               value: Optional[float] = None) -> None:
        if _LEVELS.get(kind, LOG_TRACE) > self.level:
            return
        if len(self.events) >= self.max_events:
            self._dropped += 1
            return
        self.events.append(LogEvent(self.clock(), kind, detail, line, value))

    @property
    def dropped(self) -> int:
        """Events discarded after hitting ``max_events``."""
        return self._dropped

    def count(self, kind: EventKind) -> int:
        return sum(1 for event in self.events if event.kind is kind)

    def counts(self) -> dict[EventKind, int]:
        return dict(_Counter(event.kind for event in self.events))

    def backoff_initiations(self) -> int:
        """How often a client backed off — the paper's overload alarm."""
        return self.count(EventKind.TRY_BACKOFF)

    def of_kind(self, kind: EventKind) -> Iterator[LogEvent]:
        return (event for event in self.events if event.kind is kind)

    def summary(self) -> str:
        """A human-readable digest for post-mortem analysis."""
        lines = ["ftsh execution log summary:"]
        for kind, count in sorted(self.counts().items(), key=lambda kv: kv[0].value):
            lines.append(f"  {kind.value:<17} {count}")
        if self._dropped:
            lines.append(f"  (dropped {self._dropped} events past cap)")
        return "\n".join(lines)

    def dump(self) -> str:
        """Every event, one per line."""
        return "\n".join(str(event) for event in self.events)

    def __len__(self) -> int:
        return len(self.events)
