"""The wall-clock driver: effects -> POSIX.

Implements the process-management story from the paper, §4:

* every child gets its own POSIX session (``start_new_session=True``, the
  modern spelling of ``setsid``) so a ``try`` timeout can terminate the
  whole process tree with one ``killpg``;
* processes are "first gently requested to exit with SIGTERM and later
  forcibly killed with SIGKILL";
* a nested ftsh child is told the parent's (slightly earlier) deadline
  through the :data:`DEADLINE_ENV` environment variable, so the child
  shuts its own children down before the parent has to shoot blind;
* ``forall`` branches run in threads; the first failing branch sets a
  cancellation event that the other branches poll between and during
  effects.
"""

from __future__ import annotations

import os
import signal
import subprocess
import threading
import time
from typing import Any, Optional

from .effects import (
    CommandResult,
    EffectGenerator,
    GetRandom,
    GetTime,
    ParallelResult,
    RunCommand,
    RunParallel,
    Sleep,
    SleepResult,
)
from .errors import FtshCancelled, FtshControl, FtshRuntimeError
from ..obs.api import NULL_OBS
from .timeline import UNBOUNDED

#: Environment variable carrying the absolute (epoch) deadline to nested
#: ftsh interpreters.  The child subtracts :data:`NESTED_DEADLINE_MARGIN`
#: so it can clean up its own process groups before the parent's SIGKILL.
DEADLINE_ENV = "FTSH_DEADLINE_EPOCH"
NESTED_DEADLINE_MARGIN = 1.0

import random as _random


class RealDriver:
    """Drives an effect generator against the real operating system."""

    def __init__(
        self,
        term_grace: float = 1.0,
        poll_interval: float = 0.05,
        rng: Optional[_random.Random] = None,
        env: Optional[dict[str, str]] = None,
        max_parallel: Optional[int] = None,
        obs: Any = None,
    ) -> None:
        #: Seconds between SIGTERM and SIGKILL on timeout/cancel.
        self.term_grace = term_grace
        #: Granularity of cancellation/deadline polling.
        self.poll_interval = poll_interval
        #: Cap on simultaneously running ``forall`` branches (paper §4:
        #: "the creation of processes must be governed by an Ethernet-like
        #: algorithm" — branch creation beyond the cap waits its turn
        #: instead of exhausting process tables).  None = unlimited.
        self.max_parallel = max_parallel
        if max_parallel is not None and max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
        self._rng = rng or _random.Random()
        self._env = env
        self._origin = time.monotonic()
        #: Telemetry for the runtime layer itself (process lifecycles),
        #: complementing the interpreter's semantic spans.
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_spawned = metrics.counter(
            "ftsh_real_processes_spawned_total", "POSIX processes started")
        self._m_spawn_failures = metrics.counter(
            "ftsh_real_spawn_failures_total",
            "commands that could not be loaded and run")
        self._m_kills = metrics.counter(
            "ftsh_real_sessions_signalled_total",
            "process sessions signalled at deadline/cancel", labels=("signal",))
        self._m_threads = metrics.counter(
            "ftsh_real_branch_threads_total", "forall branch threads started")

    # The interpreter's clock: seconds since driver creation (monotonic).
    def now(self) -> float:
        return time.monotonic() - self._origin

    # ------------------------------------------------------------------
    def run(self, generator: EffectGenerator) -> Optional[BaseException]:
        """Drive ``generator`` to completion.

        Returns ``None`` on success or the control exception
        (:class:`FtshFailure` / :class:`FtshTimeout` / :class:`FtshCancelled`)
        on failure.  Non-control exceptions propagate: they are bugs.
        """
        return self._drive(generator, cancel_event=None)

    def _drive(
        self, generator: EffectGenerator, cancel_event: Optional[threading.Event]
    ) -> Optional[BaseException]:
        try:
            effect = generator.send(None)
            while True:
                if cancel_event is not None and cancel_event.is_set():
                    effect = generator.throw(FtshCancelled("forall branch cancelled"))
                    continue
                result = self._execute(effect, cancel_event)
                effect = generator.send(result)
        except StopIteration:
            return None
        except FtshControl as control:
            return control

    # ------------------------------------------------------------------
    def _execute(self, effect: Any, cancel_event: Optional[threading.Event]) -> Any:
        if isinstance(effect, GetTime):
            return self.now()
        if isinstance(effect, GetRandom):
            return self._rng.random()
        if isinstance(effect, Sleep):
            return self._sleep(effect, cancel_event)
        if isinstance(effect, RunCommand):
            return self._run_command(effect, cancel_event)
        if isinstance(effect, RunParallel):
            return self._run_parallel(effect)
        raise FtshRuntimeError(f"unknown effect: {effect!r}")

    # ------------------------------------------------------------------
    def _sleep(self, effect: Sleep, cancel_event: Optional[threading.Event]) -> SleepResult:
        start = self.now()
        deadline_binds = effect.deadline - start < effect.duration
        limit = min(effect.duration, effect.deadline - start)
        if limit <= 0:
            return SleepResult(slept=0.0, timed_out=deadline_binds)
        if cancel_event is None:
            time.sleep(limit)
        else:
            # Event.wait returns early when cancelled; the drive loop then
            # notices the flag and throws FtshCancelled at the yield point.
            cancel_event.wait(timeout=limit)
        slept = self.now() - start
        cancelled_early = cancel_event is not None and cancel_event.is_set()
        return SleepResult(slept=slept, timed_out=deadline_binds and not cancelled_early)

    # ------------------------------------------------------------------
    def _run_command(
        self, effect: RunCommand, cancel_event: Optional[threading.Event]
    ) -> CommandResult:
        start = self.now()
        remaining = effect.deadline - start
        if remaining <= 0:
            return CommandResult(exit_code=-1, timed_out=True, detail="deadline already passed")

        stdin_handle: Any = None
        stdout_handle: Any = None
        opened: list[Any] = []
        try:
            try:
                if effect.stdin_data is not None:
                    stdin_handle = subprocess.PIPE
                elif effect.stdin_file is not None:
                    stdin_handle = open(effect.stdin_file, "rb")
                    opened.append(stdin_handle)
                else:
                    stdin_handle = subprocess.DEVNULL
                if effect.capture:
                    stdout_handle = subprocess.PIPE
                elif effect.stdout_file is not None:
                    mode = "ab" if effect.stdout_append else "wb"
                    stdout_handle = open(effect.stdout_file, mode)
                    opened.append(stdout_handle)
            except OSError as exc:
                # A missing input file or unwritable target is an ordinary
                # command failure (the shell a user would compare with
                # behaves the same way), not an interpreter crash.
                return CommandResult(exit_code=1, detail=f"redirection failed: {exc}")
            stderr_handle = subprocess.STDOUT if effect.merge_stderr else None

            env = dict(os.environ if self._env is None else self._env)
            if effect.deadline != UNBOUNDED:
                epoch_deadline = time.time() + remaining - NESTED_DEADLINE_MARGIN
                env[DEADLINE_ENV] = f"{epoch_deadline:.6f}"

            try:
                process = subprocess.Popen(
                    effect.argv,
                    stdin=stdin_handle,
                    stdout=stdout_handle,
                    stderr=stderr_handle,
                    start_new_session=True,
                    env=env,
                )
            except (OSError, ValueError) as exc:
                # "The program could not be loaded and run" — case 4 of the
                # paper's cp taxonomy; indistinguishable to the script, it
                # is simply a failure.
                self._m_spawn_failures.inc()
                return CommandResult(exit_code=127, detail=f"spawn failed: {exc}")
            self._m_spawned.inc()

            stdin_bytes = effect.stdin_data.encode() if effect.stdin_data is not None else None
            output, killed = self._wait(
                process, stdin_bytes, effect, cancel_event, capture=effect.capture
            )
            if output is None and effect.capture:
                output = ""
            if killed:
                cancelled = cancel_event is not None and cancel_event.is_set()
                return CommandResult(
                    exit_code=-1,
                    timed_out=not cancelled,
                    detail="cancelled" if cancelled else "killed at deadline",
                )
            return CommandResult(exit_code=process.returncode, output=output)
        finally:
            for handle in opened:
                handle.close()

    def _wait(
        self,
        process: subprocess.Popen,
        stdin_bytes: Optional[bytes],
        effect: RunCommand,
        cancel_event: Optional[threading.Event],
        capture: bool,
    ) -> tuple[Optional[str], bool]:
        """Wait for ``process`` under deadline/cancellation.

        Returns ``(captured_output, killed)``.  On expiry the whole
        session gets SIGTERM, then SIGKILL after ``term_grace`` seconds.
        """
        deadline = effect.deadline

        def remaining() -> float:
            return deadline - self.now()

        communicate_timeout: Optional[float]
        try:
            while True:
                if cancel_event is not None:
                    communicate_timeout = min(self.poll_interval, max(remaining(), 0.0))
                else:
                    communicate_timeout = None if deadline == UNBOUNDED else max(remaining(), 0.0)
                try:
                    stdout_bytes, _ = process.communicate(stdin_bytes, timeout=communicate_timeout)
                    output = (
                        stdout_bytes.decode(errors="replace")
                        if capture and stdout_bytes is not None
                        else None
                    )
                    return output, False
                except subprocess.TimeoutExpired:
                    stdin_bytes = None  # communicate() already wrote it
                    if cancel_event is not None and cancel_event.is_set():
                        break
                    if remaining() <= 0:
                        break
        except BaseException:
            self._kill_session(process)
            raise
        # Deadline or cancellation: terminate the whole session.
        self._kill_session(process)
        return None, True

    def _kill_session(self, process: subprocess.Popen) -> None:
        """SIGTERM the session, wait ``term_grace``, then SIGKILL."""
        try:
            pgid = os.getpgid(process.pid)
        except ProcessLookupError:
            process.wait()
            return
        try:
            os.killpg(pgid, signal.SIGTERM)
        except ProcessLookupError:
            pass
        self._m_kills.labels(signal="term").inc()
        try:
            process.wait(timeout=self.term_grace)
        except subprocess.TimeoutExpired:
            try:
                os.killpg(pgid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            self._m_kills.labels(signal="kill").inc()
            process.wait()
        # Drain pipes left open by a direct kill path.
        for stream in (process.stdout, process.stdin, process.stderr):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - best effort
                    pass

    # ------------------------------------------------------------------
    def _run_parallel(self, effect: RunParallel) -> ParallelResult:
        cancel_event = threading.Event()
        outcomes: list[Optional[BaseException]] = [None] * len(effect.branches)
        errors: list[BaseException] = []
        # The process-creation governor: at most max_parallel branches run
        # at once; the rest wait for a slot (FIFO by branch order).
        limit = self.max_parallel or len(effect.branches)
        slots = threading.Semaphore(max(limit, 1))

        def runner(index: int) -> None:
            with slots:
                if cancel_event.is_set():
                    # A sibling already failed; this branch never starts.
                    outcomes[index] = FtshCancelled("forall branch skipped")
                    return
                try:
                    outcomes[index] = self._drive(
                        effect.branches[index].generator, cancel_event
                    )
                except BaseException as exc:  # interpreter defect: re-raise in parent
                    errors.append(exc)
                    outcomes[index] = exc
                if outcomes[index] is not None:
                    cancel_event.set()

        threads = [
            threading.Thread(target=runner, args=(i,), name=branch.name, daemon=True)
            for i, branch in enumerate(effect.branches)
        ]
        for thread in threads:
            thread.start()
            self._m_threads.inc()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return ParallelResult(outcomes=outcomes)
