"""Token and word representations shared by the lexer and parser.

ftsh is a shell: its lexical atoms are *words* (possibly containing
variable references and quoted spans), *redirection operators*, and
*separators* (newline / ``;``).  Keywords are contextual — ``try`` is only
special at the start of a statement — so keyword recognition lives in the
parser, driven by :meth:`Word.keyword`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

_IDENT_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_REST = _IDENT_FIRST | set("0123456789")


def is_identifier(text: str) -> bool:
    """True if ``text`` is a valid ftsh variable name."""
    return bool(text) and text[0] in _IDENT_FIRST and all(c in _IDENT_REST for c in text)


@dataclass(frozen=True, slots=True)
class Literal:
    """A span of literal characters.  ``quoted`` spans survive empty-word
    elision and are never treated as keywords."""

    text: str
    quoted: bool = False


@dataclass(frozen=True, slots=True)
class VarRef:
    """A ``$name`` / ``${name}`` reference, expanded at evaluation time."""

    name: str
    quoted: bool = False


WordPart = Literal | VarRef


@dataclass(frozen=True, slots=True)
class Word:
    """One shell word: a concatenation of literal and variable parts."""

    parts: tuple[WordPart, ...]
    line: int = 0
    column: int = 0

    def keyword(self) -> str | None:
        """The lowercase text of this word if it could be a keyword.

        Only a word made of a single *unquoted* literal qualifies —
        ``"try"`` (quoted) is an ordinary argument, matching shell
        convention.
        """
        if len(self.parts) == 1:
            part = self.parts[0]
            if isinstance(part, Literal) and not part.quoted:
                return part.text.lower()
        return None

    def literal_text(self) -> str | None:
        """The exact text if the word contains no variable parts."""
        chunks = []
        for part in self.parts:
            if isinstance(part, VarRef):
                return None
            chunks.append(part.text)
        return "".join(chunks)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        out = []
        for part in self.parts:
            if isinstance(part, VarRef):
                out.append("${" + part.name + "}")
            else:
                out.append(part.text)
        return "".join(out)


class TokenKind(enum.Enum):
    WORD = "word"
    REDIRECT = "redirect"
    NEWLINE = "newline"
    EOF = "eof"


#: Every redirection operator, longest-first for the lexer's greedy match.
REDIRECT_OPS = (
    "->>&",
    "->>",
    "->&",
    "->",
    "-<",
    ">>&",
    ">>",
    ">&",
    ">",
    "<",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    line: int
    column: int
    word: Word | None = None
    op: str | None = None

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if self.kind is TokenKind.WORD:
            return f"WORD({self.word})"
        if self.kind is TokenKind.REDIRECT:
            return f"REDIRECT({self.op})"
        return self.kind.name
