"""Canonical formatting of ftsh scripts (the ``ftsh --format`` tool).

``format_script(parse(text))`` renders a parse tree back to source in a
single canonical style: four-space indentation, one statement per line,
``${name}`` expansions, double quotes only where a word needs them.
Formatting is *idempotent* — formatting already-formatted output changes
nothing — which the property suite verifies as a fixed point:
``format(parse(format(parse(x)))) == format(parse(x))``.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .tokens import VarRef, Word

INDENT = "    "

#: Characters that force quoting of a literal span.
_NEEDS_QUOTES = set(" \t\n;#'\"\\<>")


def _format_literal(text: str, force_quotes: bool) -> str:
    """Render a literal span, quoting/escaping as needed."""
    risky = force_quotes or any(c in _NEEDS_QUOTES for c in text) or text == ""
    if not risky:
        # '-' only starts a redirect operator before '>' or '<'
        if any(a == "-" and b in "<>" for a, b in zip(text, text[1:])):
            risky = True
    if not risky:
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("$", "\\$")
    return f'"{escaped}"'


def format_word(word: Word) -> str:
    chunks = []
    for part in word.parts:
        if isinstance(part, VarRef):
            chunks.append("${" + part.name + "}")
        else:
            chunks.append(_format_literal(part.text, force_quotes=part.quoted))
    return "".join(chunks)


def _format_expr(expr: ast.Expr, parent_op: str = "") -> str:
    if isinstance(expr, ast.Comparison):
        return f"{format_word(expr.lhs)} {expr.op} {format_word(expr.rhs)}"
    if isinstance(expr, ast.Truth):
        return format_word(expr.operand)
    if isinstance(expr, ast.Defined):
        return f".defined. {expr.name}"
    if isinstance(expr, ast.Not):
        inner = _format_expr(expr.operand, parent_op=".not.")
        if isinstance(expr.operand, ast.BoolOp):
            inner = f"( {inner} )"
        return f".not. {inner}"
    if isinstance(expr, ast.BoolOp):
        left = _format_expr(expr.lhs, parent_op=expr.op)
        right = _format_expr(expr.rhs, parent_op=expr.op)
        # parenthesize a looser .or. under a tighter .and.
        if isinstance(expr.lhs, ast.BoolOp) and expr.lhs.op != expr.op:
            left = f"( {left} )"
        if isinstance(expr.rhs, ast.BoolOp):
            # right side of a left-assoc chain always parenthesized for
            # stability (the parser folds left)
            right = f"( {right} )"
        return f"{left} {expr.op} {right}"
    raise TypeError(f"unknown expression node: {expr!r}")  # pragma: no cover


def _format_limits(limits: ast.TryLimits) -> str:
    clauses = []
    if limits.duration is not None:
        clauses.append(f"for {_duration_words(limits.duration)}")
    if limits.attempts is not None:
        clauses.append(f"{limits.attempts} times")
    if limits.every is not None:
        clauses.append(f"every {_duration_words(limits.every)}")
    if not clauses:
        return "forever"
    return " or ".join(clauses[:2]) + (
        f" {clauses[2]}" if len(clauses) > 2 else ""
    )


def _duration_words(seconds: float) -> str:
    """``90`` -> "1.5 minutes" using the largest unit that divides evenly."""
    for unit, size in (("day", 86400.0), ("hour", 3600.0), ("minute", 60.0)):
        amount = seconds / size
        if amount >= 1 and amount == int(amount):
            plural = "" if amount == 1 else "s"
            return f"{int(amount)} {unit}{plural}"
    if seconds == int(seconds):
        plural = "" if seconds == 1 else "s"
        return f"{int(seconds)} second{plural}"
    return f"{seconds:g} seconds"


def _format_statement(node: ast.Statement, depth: int, out: list[str]) -> None:
    pad = INDENT * depth
    if isinstance(node, ast.Command):
        pieces = [format_word(word) for word in node.words]
        for redirect in node.redirects:
            pieces.append(redirect.op)
            pieces.append(format_word(redirect.target))
        out.append(pad + " ".join(pieces))
    elif isinstance(node, ast.Assignment):
        out.append(pad + f"{node.name}={format_word(node.value)}")
    elif isinstance(node, ast.FailureAtom):
        out.append(pad + "failure")
    elif isinstance(node, ast.SuccessAtom):
        out.append(pad + "success")
    elif isinstance(node, ast.Try):
        out.append(pad + f"try {_format_limits(node.limits)}")
        _format_group(node.body, depth + 1, out)
        if node.catch is not None:
            out.append(pad + "catch")
            _format_group(node.catch, depth + 1, out)
        out.append(pad + "end")
    elif isinstance(node, (ast.ForAny, ast.ForAll)):
        keyword = "forany" if isinstance(node, ast.ForAny) else "forall"
        values = " ".join(format_word(word) for word in node.values)
        out.append(pad + f"{keyword} {node.var} in {values}")
        _format_group(node.body, depth + 1, out)
        out.append(pad + "end")
    elif isinstance(node, ast.If):
        out.append(pad + f"if {_format_expr(node.condition)}")
        _format_group(node.then, depth + 1, out)
        if node.orelse is not None:
            out.append(pad + "else")
            _format_group(node.orelse, depth + 1, out)
        out.append(pad + "end")
    elif isinstance(node, ast.FunctionDef):
        out.append(pad + f"function {node.name}")
        _format_group(node.body, depth + 1, out)
        out.append(pad + "end")
    else:  # pragma: no cover - parser produces no other nodes
        raise TypeError(f"unknown statement node: {node!r}")


def _format_group(group: ast.Group, depth: int, out: list[str]) -> None:
    for statement in group.body:
        _format_statement(statement, depth, out)


def format_script(script: ast.Script) -> str:
    """Render ``script`` in the canonical style (trailing newline)."""
    out: list[str] = []
    _format_group(script.body, 0, out)
    return "\n".join(out) + "\n" if out else ""
