"""Time-unit parsing for ``try for <n> <unit>`` clauses.

The paper's examples use ``30 minutes``, ``1 hour``, ``5 seconds``; the
shell accepts singular and plural forms plus the usual abbreviations.
All durations are normalized to float seconds.
"""

from __future__ import annotations

from .errors import FtshSyntaxError

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

#: Accepted spellings for each unit, lowercased.
_UNIT_SECONDS: dict[str, float] = {
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "m": MINUTE,
    "min": MINUTE,
    "mins": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "hrs": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
}


def is_time_unit(word: str) -> bool:
    """Return True if ``word`` spells a known time unit."""
    return word.lower() in _UNIT_SECONDS


def unit_seconds(word: str) -> float:
    """Return the length in seconds of one ``word`` (e.g. ``"minutes"`` -> 60).

    Raises :class:`FtshSyntaxError` for unknown units.
    """
    try:
        return _UNIT_SECONDS[word.lower()]
    except KeyError:
        raise FtshSyntaxError(f"unknown time unit: {word!r}") from None


def duration_seconds(amount: float, unit: str) -> float:
    """Return ``amount`` of ``unit`` expressed in seconds.

    Negative durations are rejected — a ``try for -5 minutes`` is a
    script bug, not a zero-length window.
    """
    if amount < 0:
        raise FtshSyntaxError(f"negative duration: {amount} {unit}")
    return amount * unit_seconds(unit)


def format_duration(seconds: float) -> str:
    """Render ``seconds`` compactly for logs (e.g. ``"90s"``, ``"2.5h"``)."""
    if seconds >= DAY:
        return f"{seconds / DAY:g}d"
    if seconds >= HOUR:
        return f"{seconds / HOUR:g}h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:g}m"
    return f"{seconds:g}s"
