"""Exponential backoff with randomized jitter — the heart of ftsh's ``try``.

The paper (section 4) specifies the policy exactly:

    "The base delay is one second, doubled after every failure, up to a
    maximum of one hour.  Each delay interval is multiplied by a random
    factor between one and two in order to distribute the expected values."

:class:`BackoffPolicy` is the immutable description of such a schedule and
:class:`BackoffState` is one client's progress through it.  Separating the
two lets thousands of simulated clients share a policy object while each
carries only an integer of state.

The jitter factor is drawn from a caller-supplied ``random()`` source so
simulations are reproducible; the multiplier is applied *after* capping,
matching the paper's wording (an attempt may therefore wait up to
``2 * ceiling``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .units import HOUR

#: Uniform [0, 1) source, e.g. ``random.random`` or a seeded stream.
RandomSource = Callable[[], float]


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """An exponential backoff schedule.

    Attributes:
        base: first delay in seconds (paper: 1 s).
        factor: growth per failure (paper: 2).
        ceiling: cap on the un-jittered delay in seconds (paper: 1 h).
        jitter_low / jitter_high: the random multiplier is drawn
            uniformly from ``[jitter_low, jitter_high)`` (paper: [1, 2)).
    """

    base: float = 1.0
    factor: float = 2.0
    ceiling: float = HOUR
    jitter_low: float = 1.0
    jitter_high: float = 2.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.ceiling < self.base:
            raise ValueError(
                f"ceiling ({self.ceiling}) must be >= base ({self.base})"
            )
        if not (0 <= self.jitter_low <= self.jitter_high):
            raise ValueError(
                f"need 0 <= jitter_low <= jitter_high, got "
                f"[{self.jitter_low}, {self.jitter_high})"
            )

    def raw_delay(self, failures: int) -> float:
        """Un-jittered delay after ``failures`` consecutive failures (>= 1).

        ``failures=1`` yields ``base``; each further failure multiplies by
        ``factor`` until ``ceiling``.
        """
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        # Closed form with overflow guards: base * factor**(failures-1).
        if self.base == 0.0:
            return 0.0
        if self.factor == 1.0:
            return min(self.base, self.ceiling)
        exponent = failures - 1
        # Decide the cap in log space: base * factor**e overflows for large
        # e (and ceiling/base overflows for subnormal bases), but their
        # logarithms never do.
        import math

        log_delay = math.log(self.base) + exponent * math.log(self.factor)
        if log_delay >= math.log(self.ceiling) - 1e-12:
            return self.ceiling
        if exponent * math.log(self.factor) > 708.0:
            # factor**exponent alone would overflow (subnormal base keeping
            # the *product* small); fall back to the log-space value.
            return min(math.exp(log_delay), self.ceiling)
        return min(self.base * self.factor**exponent, self.ceiling)

    def delay(self, failures: int, random: RandomSource) -> float:
        """Jittered delay after ``failures`` consecutive failures."""
        span = self.jitter_high - self.jitter_low
        multiplier = self.jitter_low + span * random()
        return self.raw_delay(failures) * multiplier

    def max_delay(self) -> float:
        """Largest delay this policy can ever produce."""
        return self.ceiling * self.jitter_high


#: The schedule the paper specifies for ``try``.
PAPER_POLICY = BackoffPolicy(base=1.0, factor=2.0, ceiling=HOUR)

#: A schedule for aggressive clients: no delay at all ("fixed" discipline).
NO_BACKOFF = BackoffPolicy(base=0.0, factor=1.0, ceiling=0.0, jitter_low=0.0, jitter_high=0.0)


class BackoffState:
    """One client's progress through a :class:`BackoffPolicy`.

    Call :meth:`next_delay` after each failure and sleep that long; call
    :meth:`reset` after a success so the next failure starts at ``base``.

    ``on_delay``, if given, observes every delay this state hands out —
    the hook telemetry uses (e.g. a histogram's ``observe``) without the
    hot path paying for an isinstance check or registry lookup.
    """

    __slots__ = ("policy", "_failures", "on_delay")

    def __init__(
        self,
        policy: BackoffPolicy = PAPER_POLICY,
        on_delay: Callable[[float], None] | None = None,
    ) -> None:
        self.policy = policy
        self._failures = 0
        self.on_delay = on_delay

    @property
    def failures(self) -> int:
        """Consecutive failures since the last reset."""
        return self._failures

    def next_delay(self, random: RandomSource) -> float:
        """Record a failure and return how long to wait before retrying."""
        self._failures += 1
        delay = self.policy.delay(self._failures, random)
        if self.on_delay is not None:
            self.on_delay(delay)
        return delay

    def next_delay_from_jitter(self, jitter: float) -> float:
        """Like :meth:`next_delay` with a pre-drawn U[0,1) ``jitter`` value.

        Used by the sans-IO interpreter, which obtains randomness through
        a driver effect rather than calling a source itself.
        """
        self._failures += 1
        delay = self.policy.delay(self._failures, lambda: jitter)
        if self.on_delay is not None:
            self.on_delay(delay)
        return delay

    def peek_delay(self, random: RandomSource) -> float:
        """Return the delay the *next* failure would incur, without recording it."""
        return self.policy.delay(self._failures + 1, random)

    def reset(self) -> None:
        """Forget past failures (call after a success)."""
        self._failures = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BackoffState(failures={self._failures}, policy={self.policy})"
