"""ftsh — the fault tolerant shell (the paper's primary contribution).

The package splits along the sans-IO boundary:

* language: :mod:`.lexer`, :mod:`.parser`, :mod:`.ast_nodes`
* semantics: :mod:`.interpreter` (yields effects), :mod:`.backoff`,
  :mod:`.timeline`, :mod:`.variables`, :mod:`.expressions`
* world: :mod:`.realruntime` (POSIX driver); the simulation driver lives
  in :mod:`repro.simruntime`
* front-end: :mod:`.shell` (:class:`Ftsh`), :mod:`.shell_log`
"""

from .analysis import CommandStats, LogAnalysis, analyze
from .ast_nodes import Script
from .backoff import NO_BACKOFF, PAPER_POLICY, BackoffPolicy, BackoffState
from .effects import (
    CommandResult,
    Effect,
    EffectGenerator,
    GetRandom,
    GetTime,
    ParallelBranch,
    ParallelResult,
    RunCommand,
    RunParallel,
    Sleep,
    SleepResult,
)
from .errors import (
    FtshCancelled,
    FtshError,
    FtshFailure,
    FtshRuntimeError,
    FtshSyntaxError,
    FtshTimeout,
    SimulationError,
    UndefinedVariableError,
)
from .interpreter import Interpreter
from .parser import parse
from .realruntime import DEADLINE_ENV, RealDriver
from .shell import Ftsh, RunResult
from .shell_log import EventKind, LogEvent, ShellLog
from .timeline import UNBOUNDED, AttemptBudget, DeadlineStack
from .variables import Scope, expand_word, expand_words

__all__ = [
    "AttemptBudget",
    "CommandStats",
    "LogAnalysis",
    "analyze",
    "BackoffPolicy",
    "BackoffState",
    "CommandResult",
    "DEADLINE_ENV",
    "DeadlineStack",
    "Effect",
    "EffectGenerator",
    "EventKind",
    "Ftsh",
    "FtshCancelled",
    "FtshError",
    "FtshFailure",
    "FtshRuntimeError",
    "FtshSyntaxError",
    "FtshTimeout",
    "GetRandom",
    "GetTime",
    "Interpreter",
    "LogEvent",
    "NO_BACKOFF",
    "PAPER_POLICY",
    "ParallelBranch",
    "ParallelResult",
    "RealDriver",
    "RunCommand",
    "RunParallel",
    "RunResult",
    "Scope",
    "Script",
    "ShellLog",
    "SimulationError",
    "Sleep",
    "SleepResult",
    "UNBOUNDED",
    "UndefinedVariableError",
    "expand_word",
    "expand_words",
    "parse",
]
