"""The ftsh evaluator: a sans-IO generator over the effect protocol.

``Interpreter.execute(script)`` returns a generator.  Drive it by sending
effect results back for each yielded effect (see
:mod:`repro.core.effects`).  The generator finishes normally on success
and raises :class:`FtshFailure` / :class:`FtshTimeout` on failure —
exactly the success-or-failure semantics of an ftsh procedure.

Key semantic rules implemented here (paper §4):

* A group fails fast: the first failing statement aborts the rest.
* ``try`` retries its body with exponential backoff (base 1 s, doubling,
  1 h cap, jitter in [1,2)) until the time window and/or attempt budget
  is exhausted; then the ``catch`` block (if any) decides the outcome,
  else the try fails.
* Nested ``try`` deadlines clip: an inner limit never extends an outer
  one.  A timeout unwinds to the ``try`` whose deadline expired; each
  ``try`` converts *its own* expiry into plain failure and re-raises
  outer expiries.
* ``forany`` tries alternatives in order until one succeeds; the loop
  variable keeps the winning value afterwards.
* ``forall`` runs all alternatives in parallel; the first failure
  cancels the remaining branches and fails the construct.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from . import ast_nodes as ast
from .backoff import BackoffPolicy, BackoffState, PAPER_POLICY
from .effects import (
    CommandResult,
    Effect,
    GetRandom,
    GetTime,
    ParallelBranch,
    ParallelResult,
    RunCommand,
    RunParallel,
    Sleep,
    SleepResult,
)
from .errors import (
    FtshCancelled,
    FtshFailure,
    FtshRuntimeError,
    FtshTimeout,
)
from ..obs.api import NULL_OBS
from ..obs.metrics import NULL_METRICS
from ..obs.spans import Span
from .expressions import evaluate as evaluate_expr
from .shell_log import EventKind, ShellLog
from .timeline import UNBOUNDED, AttemptBudget, DeadlineStack
from .variables import Scope, expand_word, expand_words

EvalGen = Generator[Effect, Any, None]

#: Minimal retry delay imposed when an attempt failed without consuming
#: any time under a zero-delay policy — prevents livelock (see eval_try).
ZERO_PROGRESS_QUANTUM = 0.001

#: Guard against runaway recursive ftsh functions.
MAX_FUNCTION_DEPTH = 64


class _Instruments:
    """The interpreter's metric instruments against one registry.

    Creating these used to happen in every ``Interpreter.__init__`` — ten
    registry calls (name dedupe, label tuples) per forall branch and per
    campaign cell.  They are now built once per registry and cached on it.
    """

    __slots__ = (
        "scripts", "commands", "command_seconds", "attempts", "backoffs",
        "backoff_seconds", "exhausted", "catches", "forany_picks",
        "forall_branches",
    )

    def __init__(self, metrics: Any) -> None:
        self.scripts = metrics.counter(
            "ftsh_scripts_total", "scripts finished", labels=("result",))
        self.commands = metrics.counter(
            "ftsh_commands_total", "commands run", labels=("command", "outcome"))
        self.command_seconds = metrics.histogram(
            "ftsh_command_seconds", "command wall/virtual time",
            labels=("command",))
        self.attempts = metrics.counter(
            "ftsh_try_attempts_total", "try-block attempts started")
        self.backoffs = metrics.counter(
            "ftsh_backoff_initiations_total",
            "backoff sleeps begun (the administrator overload signal)")
        self.backoff_seconds = metrics.histogram(
            "ftsh_backoff_seconds", "backoff delay chosen by the policy")
        self.exhausted = metrics.counter(
            "ftsh_try_exhausted_total", "try blocks that ran out of budget")
        self.catches = metrics.counter(
            "ftsh_catch_entered_total", "catch blocks entered")
        self.forany_picks = metrics.counter(
            "ftsh_forany_picks_total", "forany alternatives attempted")
        self.forall_branches = metrics.counter(
            "ftsh_forall_branches_total", "forall branches spawned")


#: Shared no-op bundle for every disabled registry (NullMetrics has
#: ``__slots__ = ()``, so nothing can be cached on it).
_NULL_INSTRUMENTS = _Instruments(NULL_METRICS)


def _instruments_for(metrics: Any) -> _Instruments:
    """The per-registry instrument bundle, created on first use."""
    if not getattr(metrics, "enabled", True):
        return _NULL_INSTRUMENTS
    cached = getattr(metrics, "_ftsh_instruments", None)
    if cached is None:
        # A concurrent builder would produce an identical bundle (the
        # registry dedupes families by name), so last-write-wins is fine.
        cached = _Instruments(metrics)
        metrics._ftsh_instruments = cached
    return cached


class Interpreter:
    """Evaluates one script (or one ``forall`` branch) against a scope."""

    def __init__(
        self,
        scope: Optional[Scope] = None,
        policy: BackoffPolicy = PAPER_POLICY,
        log: Optional[ShellLog] = None,
        functions: Optional[dict[str, ast.FunctionDef]] = None,
        obs: Any = NULL_OBS,
        span_parent: Optional[Span] = None,
    ) -> None:
        self.scope = scope if scope is not None else Scope()
        self.policy = policy
        self.log = log if log is not None else ShellLog()
        self.deadlines = DeadlineStack()
        #: Functions registered so far; shared with forall branches.
        self.functions: dict[str, ast.FunctionDef] = (
            functions if functions is not None else {}
        )
        self._call_depth = 0
        #: Telemetry context (tracer + metrics); NULL_OBS no-ops when off.
        self.obs = obs
        #: The span new spans nest under (a forall branch starts under
        #: its branch span; a top-level script starts at the root).
        self._span: Optional[Span] = span_parent
        #: Fast guard the compiled plans use to skip span-name and label
        #: construction entirely when telemetry is disabled.
        self._obs_on = bool(getattr(obs, "enabled", True))
        instruments = _instruments_for(obs.metrics)
        self._m_scripts = instruments.scripts
        self._m_commands = instruments.commands
        self._m_command_seconds = instruments.command_seconds
        self._m_attempts = instruments.attempts
        self._m_backoffs = instruments.backoffs
        self._m_backoff_seconds = instruments.backoff_seconds
        self._m_exhausted = instruments.exhausted
        self._m_catches = instruments.catches
        self._m_forany_picks = instruments.forany_picks
        self._m_forall_branches = instruments.forall_branches

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, script: Any, overall_deadline: float = UNBOUNDED) -> EvalGen:
        """Evaluate a whole script, optionally under a global deadline.

        ``script`` is either a parsed :class:`~repro.core.ast_nodes.Script`
        (tree-walked) or a compiled
        :class:`~repro.core.compile.ScriptPlan` (plan-dispatched); both
        speak the same effect protocol with identical semantics.
        """
        if isinstance(script, ast.Script):
            return self._execute_top(script.body, overall_deadline)
        return script.execute(self, overall_deadline)

    def _execute_top(self, body: ast.Group, overall_deadline: float) -> EvalGen:
        self.deadlines.push(overall_deadline)
        tracer = self.obs.tracer
        span = tracer.start("script", "script", parent=self._span)
        outer, self._span = self._span, span
        try:
            yield from self.eval_group(body)
            self.log.record(EventKind.SCRIPT_RESULT, "success")
            tracer.finish(span, "ok")
            self._m_scripts.labels(result="success").inc()
        except FtshFailure as failure:
            self.log.record(EventKind.SCRIPT_RESULT, f"failure: {failure.reason}")
            tracer.finish(span, "failed", reason=failure.reason)
            self._m_scripts.labels(result="failure").inc()
            raise
        except FtshTimeout as timeout:
            self.log.record(EventKind.SCRIPT_RESULT, f"timeout: {timeout.reason}")
            tracer.finish(span, "timeout", reason=timeout.reason)
            self._m_scripts.labels(result="timeout").inc()
            raise
        except BaseException:
            tracer.finish(span, "cancelled")
            self._m_scripts.labels(result="cancelled").inc()
            raise
        finally:
            self._span = outer
            self.deadlines.pop()

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def eval_group(self, group: ast.Group) -> EvalGen:
        for statement in group.body:
            yield from self.eval_statement(statement)

    def eval_statement(self, node: ast.Statement) -> EvalGen:
        if isinstance(node, ast.Command):
            yield from self.eval_command(node)
        elif isinstance(node, ast.Assignment):
            yield from self.eval_assignment(node)
        elif isinstance(node, ast.Try):
            yield from self.eval_try(node)
        elif isinstance(node, ast.ForAny):
            yield from self.eval_forany(node)
        elif isinstance(node, ast.ForAll):
            yield from self.eval_forall(node)
        elif isinstance(node, ast.If):
            yield from self.eval_if(node)
        elif isinstance(node, ast.FailureAtom):
            self.log.record(EventKind.FAILURE_ATOM, line=node.line)
            raise FtshFailure("failure atom")
        elif isinstance(node, ast.SuccessAtom):
            return
        elif isinstance(node, ast.FunctionDef):
            self.functions[node.name] = node
        else:  # pragma: no cover - parser produces no other nodes
            raise FtshRuntimeError(f"unknown statement node: {node!r}")

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def eval_assignment(self, node: ast.Assignment) -> EvalGen:
        value = expand_word(node.value, self.scope)
        self.scope.set(node.name, value)
        self.log.record(EventKind.ASSIGNMENT, f"{node.name}={value!r}", node.line)
        return
        yield  # pragma: no cover - makes this a generator

    def eval_command(self, node: ast.Command) -> EvalGen:
        argv = expand_words(node.words, self.scope)
        if not argv:
            raise FtshFailure("command expanded to nothing")
        if argv[0] in self.functions:
            yield from self.call_function(self.functions[argv[0]], argv, node)
            return
        tracer = self.obs.tracer

        effect = RunCommand(argv=argv, deadline=self.deadlines.effective())
        capture_var: str | None = None
        capture_append = False
        for redirect in node.redirects:
            if redirect.to_variable:
                name = redirect.target.literal_text() or ""
                if redirect.is_input:  # -<
                    effect.stdin_data = self.scope.get(name)
                    effect.stdin_file = None
                else:  # -> ->> ->& ->>&
                    capture_var = name
                    capture_append = redirect.appends
                    effect.capture = True
                    effect.merge_stderr = redirect.merges_stderr
                    effect.stdout_file = None
            else:
                target = expand_word(redirect.target, self.scope)
                if redirect.is_input:  # <
                    effect.stdin_file = target
                    effect.stdin_data = None
                else:  # > >> >& >>&
                    effect.stdout_file = target
                    effect.stdout_append = redirect.appends
                    effect.merge_stderr = redirect.merges_stderr
                    effect.capture = False
                    capture_var = None

        self.log.record(EventKind.COMMAND_START, " ".join(argv), node.line)
        span = tracer.start(f"command:{argv[0]}", "command", parent=self._span,
                            argv=" ".join(argv), line=node.line or None)
        try:
            result: CommandResult = yield effect
        except BaseException:
            # FtshCancelled thrown in at the yield (losing forall branch),
            # or generator teardown: the command did not report a result.
            tracer.finish(span, "cancelled")
            self._m_commands.labels(command=argv[0], outcome="cancelled").inc()
            raise
        if result.timed_out:
            self.log.record(EventKind.COMMAND_TIMEOUT, " ".join(argv), node.line)
            tracer.finish(span, "timeout", detail=result.detail or None)
            self._m_commands.labels(command=argv[0], outcome="timeout").inc()
            raise FtshTimeout(self.deadlines.effective(), f"{argv[0]} hit time limit")
        if result.exit_code != 0:
            self.log.record(
                EventKind.COMMAND_FAILED,
                f"{' '.join(argv)} exited {result.exit_code} {result.detail}".rstrip(),
                node.line,
            )
            tracer.finish(span, "failed", exit_code=result.exit_code,
                          detail=result.detail or None)
            self._m_commands.labels(command=argv[0], outcome="failed").inc()
            raise FtshFailure(f"{argv[0]} exited {result.exit_code}")
        if capture_var is not None:
            text = (result.output or "").rstrip("\n")
            if capture_append:
                self.scope.append(capture_var, text)
            else:
                self.scope.set(capture_var, text)
        self.log.record(EventKind.COMMAND_END, argv[0], node.line)
        tracer.finish(span, "ok")
        self._m_commands.labels(command=argv[0], outcome="ok").inc()
        if span.end is not None:
            self._m_command_seconds.labels(command=argv[0]).observe(span.duration)

    def call_function(
        self, function: ast.FunctionDef, argv: list[str], node: ast.Command
    ) -> EvalGen:
        """Invoke a defined function with positionals bound for the call.

        Positionals shadow existing bindings and are restored afterwards
        (stack discipline, so recursion works); every other variable
        write goes to the shared scope, shell-style.  Redirections on a
        function call are not supported — a function is not a process.
        """
        if node.redirects:
            raise FtshFailure(
                f"cannot redirect function call {function.name!r}"
            )
        if self._call_depth >= MAX_FUNCTION_DEPTH:
            raise FtshFailure(
                f"function recursion deeper than {MAX_FUNCTION_DEPTH}"
            )
        bindings = {"0": argv[0], "#": str(len(argv) - 1)}
        for index, arg in enumerate(argv[1:], start=1):
            bindings[str(index)] = arg
        saved = {name: self.scope.lookup(name) for name in bindings}
        for name, value in bindings.items():
            self.scope.set(name, value)
        self._call_depth += 1
        tracer = self.obs.tracer
        span = tracer.start(f"function:{function.name}", "function",
                            parent=self._span, line=node.line or None)
        caller_span, self._span = self._span, span
        try:
            yield from self.eval_group(function.body)
            tracer.finish(span, "ok")
        except FtshFailure:
            tracer.finish(span, "failed")
            raise
        except FtshTimeout:
            tracer.finish(span, "timeout")
            raise
        except BaseException:
            tracer.finish(span, "cancelled")
            raise
        finally:
            self._span = caller_span
            self._call_depth -= 1
            for name, previous in saved.items():
                if previous is None:
                    self.scope.unset(name)  # was unbound before the call
                else:
                    self.scope.set(name, previous)

    # ------------------------------------------------------------------
    # try / catch
    # ------------------------------------------------------------------
    def eval_try(self, node: ast.Try) -> EvalGen:
        now = yield GetTime()
        tracer = self.obs.tracer
        span = tracer.start(
            "try", "try", parent=self._span, line=node.line or None,
            limit_seconds=node.limits.duration,
            limit_attempts=node.limits.attempts,
        )
        enclosing, self._span = self._span, span
        try:
            succeeded, attempts = yield from self._try_attempts(node, now, span)
            if succeeded:
                tracer.finish(span, "ok", attempts=attempts)
                return

            # Exhausted.  The expired deadline is already popped, so the
            # catch block runs under the *enclosing* limits only.
            if node.catch is not None:
                self.log.record(EventKind.CATCH_ENTERED, line=node.line)
                self._m_catches.inc()
                catch_span = tracer.start("catch", "catch", parent=span,
                                          line=node.line or None)
                self._span = catch_span
                try:
                    yield from self.eval_group(node.catch)
                    tracer.finish(catch_span, "ok")
                except FtshFailure:
                    tracer.finish(catch_span, "failed")
                    raise
                except FtshTimeout:
                    tracer.finish(catch_span, "timeout")
                    raise
                except BaseException:
                    tracer.finish(catch_span, "cancelled")
                    raise
                finally:
                    self._span = span
                tracer.finish(span, "ok", attempts=attempts, caught=True)
                return
            tracer.finish(span, "failed", attempts=attempts)
            raise FtshFailure(f"try exhausted after {attempts} attempts")
        except FtshTimeout:
            tracer.finish(span, "timeout")
            raise
        except FtshFailure:
            tracer.finish(span, "failed")
            raise
        except BaseException:
            tracer.finish(span, "cancelled")
            raise
        finally:
            self._span = enclosing

    def _try_attempts(
        self, node: ast.Try, now: float, span: Optional[Span]
    ) -> Generator[Effect, Any, tuple[bool, int]]:
        """The retry loop of one ``try``: returns (succeeded, attempts).

        Re-raises timeouts belonging to enclosing windows; converts this
        try's own expiry into ``(False, n)`` so the caller can run the
        catch block.
        """
        wanted = UNBOUNDED if node.limits.duration is None else now + node.limits.duration
        clipped = self.deadlines.push(wanted)
        budget = AttemptBudget(deadline=clipped, max_attempts=node.limits.attempts)
        backoff = BackoffState(self.policy)
        succeeded = False
        attempt_start = now
        tracer = self.obs.tracer
        try:
            while True:
                budget.start_attempt()
                self.log.record(
                    EventKind.TRY_ATTEMPT, f"attempt {budget.attempts}", node.line
                )
                self._m_attempts.inc()
                attempt_span = tracer.start(
                    f"attempt:{budget.attempts}", "attempt", parent=span
                )
                self._span = attempt_span
                try:
                    yield from self.eval_group(node.body)
                    succeeded = True
                    tracer.finish(attempt_span, "ok")
                    self.log.record(EventKind.TRY_SUCCESS, f"after {budget.attempts}", node.line)
                    return True, budget.attempts
                except FtshFailure:
                    tracer.finish(attempt_span, "failed")
                except FtshTimeout as timeout:
                    tracer.finish(attempt_span, "timeout")
                    if timeout.deadline < clipped:
                        raise  # belongs to an enclosing try
                    break  # our own window expired mid-attempt
                except BaseException:
                    tracer.finish(attempt_span, "cancelled")
                    raise
                finally:
                    self._span = span
                now = yield GetTime()
                if not budget.may_retry(now):
                    break
                if node.limits.every is not None:
                    delay = node.limits.every
                else:
                    jitter = yield GetRandom()
                    delay = backoff.next_delay_from_jitter(jitter)
                if delay <= 0 and now <= attempt_start:
                    # A zero-delay retry of an attempt that consumed no time
                    # would loop forever in a virtual clock (and spin a CPU
                    # in a real one).  Impose a minimal scheduling quantum.
                    delay = ZERO_PROGRESS_QUANTUM
                attempt_start = now
                delay = self.deadlines.clip(delay, now)
                if delay > 0:
                    self.log.record(
                        EventKind.TRY_BACKOFF,
                        f"failure {backoff.failures}: waiting {delay:.3f}s",
                        node.line,
                        value=delay,
                    )
                    self._m_backoffs.inc()
                    self._m_backoff_seconds.observe(delay)
                    sleep_span = tracer.start(
                        f"backoff:{budget.attempts}", "backoff", parent=span,
                        delay=delay,
                    )
                    try:
                        sleep_result: SleepResult = yield Sleep(delay, clipped)
                    except BaseException:
                        tracer.finish(sleep_span, "cancelled")
                        raise
                    tracer.finish(sleep_span, "ok", slept=sleep_result.slept)
                    if sleep_result.timed_out:
                        break
                    attempt_start = now + sleep_result.slept
        finally:
            self.deadlines.pop()
            if not succeeded:
                self.log.record(
                    EventKind.TRY_EXHAUSTED, f"after {budget.attempts} attempts", node.line
                )
                self._m_exhausted.inc()
        return False, budget.attempts

    # ------------------------------------------------------------------
    # forany / forall
    # ------------------------------------------------------------------
    def eval_forany(self, node: ast.ForAny) -> EvalGen:
        tracer = self.obs.tracer
        span = tracer.start(f"forany:{node.var}", "forany", parent=self._span,
                            line=node.line or None,
                            alternatives=len(node.values))
        enclosing, self._span = self._span, span
        last_failure: FtshFailure | None = None
        try:
            for value_word in node.values:
                value = expand_word(value_word, self.scope)
                self.scope.set(node.var, value)
                self.log.record(EventKind.FORANY_PICK, f"{node.var}={value}", node.line)
                self._m_forany_picks.inc()
                alt_span = tracer.start(f"alt:{value}", "alt", parent=span)
                self._span = alt_span
                try:
                    yield from self.eval_group(node.body)
                    tracer.finish(alt_span, "ok")
                    tracer.finish(span, "ok", winner=value)
                    return  # winner; node.var keeps the successful value
                except FtshFailure as failure:
                    tracer.finish(alt_span, "failed")
                    last_failure = failure
                except FtshTimeout:
                    tracer.finish(alt_span, "timeout")
                    raise
                except BaseException:
                    tracer.finish(alt_span, "cancelled")
                    raise
                finally:
                    self._span = span
            reason = last_failure.reason if last_failure else "no alternatives"
            tracer.finish(span, "failed")
            raise FtshFailure(f"forany exhausted all alternatives (last: {reason})")
        except FtshTimeout:
            tracer.finish(span, "timeout")
            raise
        except BaseException:
            # finish() is idempotent, so an earlier ok/failed verdict sticks.
            tracer.finish(span, "cancelled")
            raise
        finally:
            self._span = enclosing

    def eval_forall(self, node: ast.ForAll) -> EvalGen:
        tracer = self.obs.tracer
        span = tracer.start(f"forall:{node.var}", "forall", parent=self._span,
                            line=node.line or None, branches=len(node.values))
        branch_spans: list[Optional[Span]] = []
        branches: list[ParallelBranch] = []
        for index, value_word in enumerate(node.values):
            value = expand_word(value_word, self.scope)
            branch_scope = self.scope.child()
            branch_scope.set(node.var, value)
            branch_span = tracer.start(f"branch:{node.var}={value}", "branch",
                                       parent=span)
            branch_spans.append(branch_span)
            branch = Interpreter(branch_scope, self.policy, self.log,
                                 functions=self.functions,
                                 obs=self.obs, span_parent=branch_span)
            # Branches inherit the current effective deadline as their base.
            branch.deadlines.push(self.deadlines.effective())
            generator = branch._branch_body(node.body)
            branches.append(ParallelBranch(f"{node.var}={value}#{index}", generator))
            self.log.record(EventKind.FORALL_SPAWN, f"{node.var}={value}", node.line)
            self._m_forall_branches.inc()

        try:
            result: ParallelResult = yield RunParallel(
                branches, deadline=self.deadlines.effective()
            )
        except BaseException:
            for branch_span in branch_spans:
                tracer.finish(branch_span, "cancelled")
            tracer.finish(span, "cancelled")
            raise
        if len(result.outcomes) != len(branches):
            tracer.finish(span, "failed")
            raise FtshRuntimeError(
                f"driver returned {len(result.outcomes)} outcomes for "
                f"{len(branches)} branches"
            )
        timeout: FtshTimeout | None = None
        failure: BaseException | None = None
        for outcome, branch_span in zip(result.outcomes, branch_spans):
            if outcome is None:
                tracer.finish(branch_span, "ok")
                continue
            if isinstance(outcome, FtshTimeout):
                # Escaped every try inside the branch, so it belongs to one
                # of *our* enclosing scopes; keep the earliest.
                tracer.finish(branch_span, "timeout")
                if timeout is None or outcome.deadline < timeout.deadline:
                    timeout = outcome
            elif isinstance(outcome, FtshCancelled):
                tracer.finish(branch_span, "cancelled")
                failure = failure or outcome
            elif isinstance(outcome, FtshFailure):
                tracer.finish(branch_span, "failed")
                failure = failure or outcome
            else:
                tracer.finish(branch_span, "failed")
                tracer.finish(span, "failed")
                raise outcome  # driver bug or interpreter defect: surface it
        if timeout is not None:
            tracer.finish(span, "timeout")
            raise timeout
        if failure is not None:
            tracer.finish(span, "failed")
            raise FtshFailure(f"forall branch failed: {failure}")
        tracer.finish(span, "ok")

    def _branch_body(self, body: ast.Group) -> EvalGen:
        """Evaluate a forall branch body (run as its own effect generator)."""
        yield from self.eval_group(body)

    # ------------------------------------------------------------------
    # if / else
    # ------------------------------------------------------------------
    def eval_if(self, node: ast.If) -> EvalGen:
        verdict = evaluate_expr(node.condition, self.scope)
        self.log.record(EventKind.CONDITION, str(verdict), node.line)
        if verdict:
            yield from self.eval_group(node.then)
        elif node.orelse is not None:
            yield from self.eval_group(node.orelse)
