"""Abstract syntax tree for ftsh programs.

Every node is an immutable dataclass.  A *procedure* (any node) does not
return a value — it succeeds or fails (paper, §4); the tree therefore has
no expression nodes except inside ``if`` conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .tokens import Word


@dataclass(frozen=True, slots=True)
class Redirect:
    """One redirection: ``op`` applied to ``target``.

    File targets (`` > >> >& >>&``, ``<``) name paths; variable targets
    (``-> ->> ->& ->>&``, ``-<``) name shell variables.
    """

    op: str
    target: Word

    @property
    def to_variable(self) -> bool:
        return self.op.startswith("-")

    @property
    def is_input(self) -> bool:
        return self.op in ("<", "-<")

    @property
    def appends(self) -> bool:
        return ">>" in self.op

    @property
    def merges_stderr(self) -> bool:
        return self.op.endswith("&")


@dataclass(frozen=True, slots=True)
class Command:
    """An external command: words plus redirections."""

    words: tuple[Word, ...]
    redirects: tuple[Redirect, ...] = ()
    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class Assignment:
    """``name=value`` — bind a shell variable."""

    name: str
    value: Word
    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class FailureAtom:
    """The ``failure`` command: unconditionally fail (throw)."""

    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class SuccessAtom:
    """The ``success`` command: unconditionally succeed (no-op)."""

    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class FunctionDef:
    """``function NAME … end`` — a named procedure (ftsh tech report).

    Calls look like commands: a statement whose first word names a
    defined function invokes it with positionals ``$1``..``$N`` (plus
    ``$0`` = the function name and ``$#`` = argument count) bound for
    the duration of the call.  Like every procedure it only succeeds or
    fails.
    """

    name: str
    body: "Group"
    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class Group:
    """A sequence executed in order; fails fast on the first failure."""

    body: tuple["Statement", ...]
    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class TryLimits:
    """The retry budget of a ``try``.

    ``duration`` — seconds in the time window (None = unlimited);
    ``attempts`` — maximum attempts (None = unlimited);
    ``every`` — fixed retry interval in seconds overriding exponential
    backoff (an extension from the ftsh technical report).
    A ``try forever`` has all three None.

    ``duration_unit`` / ``every_unit`` keep the unit word as written in
    the source (``"seconds"``, ``"h"``, …) so style tools — the linter's
    time-literal checks, notably — can tell ``86400 seconds`` from
    ``1 day`` after normalization.
    """

    duration: Optional[float] = None
    attempts: Optional[int] = None
    every: Optional[float] = None
    duration_unit: Optional[str] = None
    every_unit: Optional[str] = None


@dataclass(frozen=True, slots=True)
class Try:
    """``try <limits> … [catch …] end`` — the heart of the Ethernet approach."""

    limits: TryLimits
    body: Group
    catch: Optional[Group] = None
    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class ForAny:
    """``forany VAR in w1 w2 … end`` — first alternative to succeed wins."""

    var: str
    values: tuple[Word, ...]
    body: Group
    line: int = 0
    column: int = 0


@dataclass(frozen=True, slots=True)
class ForAll:
    """``forall VAR in w1 w2 … end`` — run all alternatives in parallel;
    all must succeed, first failure aborts the rest."""

    var: str
    values: tuple[Word, ...]
    body: Group
    line: int = 0
    column: int = 0


# ---------------------------------------------------------------------------
# Conditions (if-expressions)
# ---------------------------------------------------------------------------

#: Numeric comparators and their semantics.
NUMERIC_OPS = (".lt.", ".gt.", ".le.", ".ge.", ".eq.", ".ne.")
#: String comparators.
STRING_OPS = (".eql.", ".neql.")
#: Boolean connectives, in increasing binding strength.
BOOL_OPS = (".or.", ".and.", ".not.")


@dataclass(frozen=True, slots=True)
class Comparison:
    """``lhs OP rhs`` with a numeric or string comparator."""

    op: str
    lhs: Word
    rhs: Word


@dataclass(frozen=True, slots=True)
class Truth:
    """A bare operand: true iff it expands to something non-empty,
    other than ``0`` or ``false``."""

    operand: Word


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class Defined:
    """``.defined. name`` — true iff the shell variable is bound.

    An extension beyond the paper's listings: scripts that capture into a
    variable inside a ``try`` need a safe way to test whether the capture
    ever happened (expanding an unbound variable is itself a failure).
    """

    name: str


@dataclass(frozen=True, slots=True)
class BoolOp:
    """``.and.`` / ``.or.`` over two sub-expressions (left-assoc chains)."""

    op: str
    lhs: "Expr"
    rhs: "Expr"


Expr = Union[Comparison, Truth, Not, BoolOp, Defined]


@dataclass(frozen=True, slots=True)
class If:
    """``if EXPR … [else …] end``."""

    condition: Expr
    then: Group
    orelse: Optional[Group] = None
    line: int = 0
    column: int = 0


Statement = Union[
    Command, Assignment, FailureAtom, SuccessAtom, Try, ForAny, ForAll, If,
    FunctionDef,
]


@dataclass(frozen=True, slots=True)
class Script:
    """A whole parsed program."""

    body: Group
    source_name: str = "<script>"
