"""The ftsh lexer: text -> tokens.

Lexical rules (shell-flavoured):

* Words are maximal runs of non-special characters.  ``"…"`` spans allow
  spaces and expand ``$var`` inside; ``'…'`` spans are fully literal;
  adjacent spans concatenate into one word (``a"b c"d``).
* ``$name`` and ``${name}`` are variable references.  A ``$`` not
  followed by an identifier is a literal dollar sign.
* ``\\`` escapes the next character anywhere (including quotes, ``$``,
  ``>`` and newline — a backslash-newline is a line continuation).
* ``#`` starts a comment when it begins a token (start of line or after
  whitespace); inside a word it is an ordinary character (``file#1``).
* Redirection operators: ``> >> >& >>&`` (files), ``-> ->> ->& -<``
  (shell variables — the paper's "redirection to variables", §4).
  A ``-`` only starts an operator when immediately followed by ``>`` or
  ``<``; ``-f`` and ``a-b`` stay words.
* ``\\n`` and ``;`` both end a statement.
"""

from __future__ import annotations

from .errors import FtshSyntaxError
from .tokens import (
    REDIRECT_OPS,
    Literal,
    Token,
    TokenKind,
    VarRef,
    Word,
    WordPart,
    _IDENT_FIRST,
    _IDENT_REST,
)

_SPACE = frozenset(" \t\r")
_WORD_BREAK = set(_SPACE) | {"\n", ";", '"', "'", "$", "\\"}


class Lexer:
    """Single-pass tokenizer with 1-based line/column tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor ----------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        taken = self.text[self.pos : self.pos + count]
        for ch in taken:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return taken

    def _error(self, message: str) -> FtshSyntaxError:
        return FtshSyntaxError(message, self.line, self.column)

    # -- main loop -------------------------------------------------------
    def tokens(self) -> list[Token]:
        """Tokenize the whole input."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    def _next_token(self) -> Token:
        self._skip_blank()
        line, column = self.line, self.column
        ch = self._peek()
        if ch == "":
            return Token(TokenKind.EOF, line, column)
        if ch in ("\n", ";"):
            self._advance()
            return Token(TokenKind.NEWLINE, line, column)
        op = self._match_redirect()
        if op is not None:
            return Token(TokenKind.REDIRECT, line, column, op=op)
        word = self._lex_word()
        return Token(TokenKind.WORD, line, column, word=word)

    def _skip_blank(self) -> None:
        """Skip spaces, comments, and backslash-newline continuations."""
        while True:
            ch = self._peek()
            if ch in _SPACE:
                self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
            elif ch == "#":
                while self._peek() not in ("", "\n"):
                    self._advance()
            else:
                return

    def _match_redirect(self) -> str | None:
        """Greedily match a redirection operator at the cursor, if any."""
        ch = self._peek()
        if ch == "-" and self._peek(1) not in (">", "<"):
            return None
        if ch not in ("-", ">", "<"):
            return None
        for op in REDIRECT_OPS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return op
        return None

    # -- words -----------------------------------------------------------
    def _lex_word(self) -> Word:
        line, column = self.line, self.column
        parts: list[WordPart] = []
        buffer: list[str] = []

        def flush(quoted: bool = False) -> None:
            if buffer:
                parts.append(Literal("".join(buffer), quoted))
                buffer.clear()

        while True:
            ch = self._peek()
            if ch == "" or ch in _SPACE or ch in ("\n", ";"):
                break
            if ch == "#":
                # '#' inside a word is literal; it only comments at token start.
                buffer.append(self._advance())
                continue
            if ch in (">", "<") or (ch == "-" and self._peek(1) in (">", "<")):
                break
            if ch == "\\":
                self._advance()
                nxt = self._peek()
                if nxt == "":
                    raise self._error("dangling backslash at end of input")
                if nxt == "\n":
                    self._advance()
                    continue
                buffer.append(self._advance())
                continue
            if ch == "'":
                flush()
                parts.append(Literal(self._lex_single_quote(), quoted=True))
                continue
            if ch == '"':
                flush()
                parts.extend(self._lex_double_quote())
                continue
            if ch == "$":
                ref = self._try_lex_varref(quoted=False)
                if ref is None:
                    buffer.append(self._advance())
                else:
                    flush()
                    parts.append(ref)
                continue
            buffer.append(self._advance())
        flush()
        if not parts:
            raise self._error("empty word")  # pragma: no cover - unreachable by construction
        return Word(tuple(parts), line, column)

    def _lex_single_quote(self) -> str:
        self._advance()  # opening '
        chunk: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated single quote")
            if ch == "'":
                self._advance()
                return "".join(chunk)
            chunk.append(self._advance())

    def _lex_double_quote(self) -> list[WordPart]:
        self._advance()  # opening "
        parts: list[WordPart] = []
        chunk: list[str] = []

        def flush() -> None:
            # Empty chunks still matter: "" is a real (empty) quoted part.
            parts.append(Literal("".join(chunk), quoted=True))
            chunk.clear()

        emitted = False
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated double quote")
            if ch == '"':
                self._advance()
                if chunk or not emitted:
                    flush()
                return parts
            if ch == "\\":
                self._advance()
                nxt = self._peek()
                if nxt == "":
                    raise self._error("unterminated double quote")
                if nxt == "\n":
                    self._advance()
                    continue
                chunk.append(self._advance())
                continue
            if ch == "$":
                ref = self._try_lex_varref(quoted=True)
                if ref is None:
                    chunk.append(self._advance())
                else:
                    if chunk:
                        flush()
                    parts.append(ref)
                    emitted = True
                continue
            chunk.append(self._advance())

    def _try_lex_varref(self, quoted: bool) -> VarRef | None:
        """Lex ``$name`` / ``${name}`` at the cursor; None if plain ``$``."""
        assert self._peek() == "$"
        nxt = self._peek(1)
        if nxt == "{":
            self._advance(2)
            name_chars: list[str] = []
            while True:
                ch = self._peek()
                if ch == "":
                    raise self._error("unterminated ${...} reference")
                if ch == "}":
                    self._advance()
                    break
                name_chars.append(self._advance())
            name = "".join(name_chars)
            positional = name.isdigit() or name == "#"
            if not positional and (
                not name
                or name[0] not in _IDENT_FIRST
                or any(c not in _IDENT_REST for c in name)
            ):
                raise self._error(f"invalid variable name in ${{{name}}}")
            return VarRef(name, quoted)
        if nxt.isdigit():
            # positional parameter: $1, $23 (digits only, greedy)
            self._advance()  # $
            digits = [self._advance()]
            while self._peek().isdigit():
                digits.append(self._advance())
            return VarRef("".join(digits), quoted)
        if nxt in _IDENT_FIRST:
            self._advance()  # $
            name_chars = [self._advance()]
            while self._peek() in _IDENT_REST:
                name_chars.append(self._advance())
            return VarRef("".join(name_chars), quoted)
        return None


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return Lexer(text).tokens()
