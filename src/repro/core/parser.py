"""Recursive-descent parser: tokens -> :mod:`repro.core.ast_nodes`.

Grammar (statement keywords are contextual — only recognized in statement
position, so ``echo try`` still echoes the word "try"):

::

    script    := stmts EOF
    stmts     := (NEWLINE | stmt NEWLINE)*
    stmt      := try | forany | forall | if | 'failure' | 'success'
               | assignment | command
    try       := 'try' limits NL stmts ('catch' NL stmts)? 'end'
    limits    := 'forever'
               | clause (('or')? clause)*
    clause    := 'for' NUMBER UNIT | NUMBER 'times' | 'every' NUMBER UNIT
    forany    := 'forany' NAME 'in' word+ NL stmts 'end'
    forall    := 'forall' NAME 'in' word+ NL stmts 'end'
    if        := 'if' expr NL stmts ('else' NL stmts)? 'end'
    expr      := orexpr
    orexpr    := andexpr ('.or.' andexpr)*
    andexpr   := notexpr ('.and.' notexpr)*
    notexpr   := '.not.' notexpr | primary
    primary   := '(' expr ')' | word (CMP word)?
    command   := (word | redirect word)+
    assignment:= WORD starting with 'name='   (single word statement)
"""

from __future__ import annotations

from functools import lru_cache

from .ast_nodes import (
    Assignment,
    BoolOp,
    Command,
    Comparison,
    Defined,
    Expr,
    FunctionDef,
    FailureAtom,
    ForAll,
    ForAny,
    Group,
    If,
    Not,
    NUMERIC_OPS,
    Redirect,
    Script,
    Statement,
    STRING_OPS,
    SuccessAtom,
    Truth,
    Try,
    TryLimits,
)
from .errors import FtshSyntaxError
from .lexer import tokenize
from .tokens import Literal, Token, TokenKind, Word, is_identifier
from .units import duration_seconds, is_time_unit

#: Words that terminate an open block.
_BLOCK_ENDERS = frozenset({"end", "catch", "else"})

#: Statement-initial keywords.
_STATEMENT_KEYWORDS = frozenset(
    {"try", "forany", "forall", "if", "failure", "success", "end", "catch",
     "else", "function"}
)

_COMPARATORS = frozenset(NUMERIC_OPS) | frozenset(STRING_OPS)


class Parser:
    def __init__(self, tokens: list[Token], source_name: str = "<script>") -> None:
        self.tokens = tokens
        self.index = 0
        self.source_name = source_name

    # -- token access ----------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> FtshSyntaxError:
        token = token or self._peek()
        return FtshSyntaxError(message, token.line, token.column)

    def _skip_newlines(self) -> None:
        while self._peek().kind is TokenKind.NEWLINE:
            self._advance()

    def _expect_newline(self, context: str) -> None:
        token = self._peek()
        if token.kind is TokenKind.NEWLINE:
            self._advance()
        elif token.kind is not TokenKind.EOF:
            raise self._error(f"expected end of line after {context}, got {token}")

    def _expect_word(self, context: str) -> Word:
        token = self._peek()
        if token.kind is not TokenKind.WORD:
            raise self._error(f"expected a word in {context}, got {token}")
        self._advance()
        return token.word

    def _peek_keyword(self) -> str | None:
        token = self._peek()
        if token.kind is TokenKind.WORD:
            return token.word.keyword()
        return None

    # -- entry -------------------------------------------------------------
    def parse_script(self) -> Script:
        body = self._parse_statements(stop=frozenset())
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            kw = self._peek_keyword()
            if kw in _BLOCK_ENDERS:
                raise self._error(f"{kw!r} with no open block")
            raise self._error(f"unexpected {token}")  # pragma: no cover - defensive
        return Script(body, self.source_name)

    # -- statements --------------------------------------------------------
    def _parse_statements(self, stop: frozenset[str]) -> Group:
        """Parse statements until EOF or a statement-initial word in ``stop``."""
        first = self._peek()
        statements: list[Statement] = []
        while True:
            self._skip_newlines()
            token = self._peek()
            if token.kind is TokenKind.EOF:
                break
            keyword = self._peek_keyword()
            if keyword in stop:
                break
            if keyword in _BLOCK_ENDERS and keyword not in stop:
                # e.g. 'else' inside a forany body, or stray 'end'.
                break
            statements.append(self._parse_statement())
        return Group(tuple(statements), line=first.line, column=first.column)

    def _parse_statement(self) -> Statement:
        keyword = self._peek_keyword()
        if keyword == "try":
            return self._parse_try()
        if keyword in ("forany", "forall"):
            return self._parse_forloop(keyword)
        if keyword == "if":
            return self._parse_if()
        if keyword == "function":
            return self._parse_function()
        if keyword == "failure":
            token = self._advance()
            self._expect_newline("'failure'")
            return FailureAtom(line=token.line, column=token.column)
        if keyword == "success":
            token = self._advance()
            self._expect_newline("'success'")
            return SuccessAtom(line=token.line, column=token.column)
        assignment = self._try_parse_assignment()
        if assignment is not None:
            return assignment
        return self._parse_command()

    def _try_parse_assignment(self) -> Assignment | None:
        """Recognize ``name=value`` when it is the whole statement."""
        token = self._peek()
        if token.kind is not TokenKind.WORD:
            return None
        word = token.word
        first = word.parts[0]
        if not isinstance(first, Literal) or first.quoted or "=" not in first.text:
            return None
        name, _, rest = first.text.partition("=")
        if not is_identifier(name):
            return None
        self._advance()
        after = self._peek()
        if after.kind is TokenKind.WORD:
            raise self._error(
                "assignment takes a single word; quote values with spaces", after
            )
        self._expect_newline("assignment")
        value_parts = []
        if rest:
            value_parts.append(Literal(rest, first.quoted))
        value_parts.extend(word.parts[1:])
        value = Word(tuple(value_parts), word.line, word.column)
        return Assignment(name, value, line=token.line, column=token.column)

    def _parse_command(self) -> Command:
        token = self._peek()
        words: list[Word] = []
        redirects: list[Redirect] = []
        while True:
            current = self._peek()
            if current.kind is TokenKind.WORD:
                words.append(self._advance().word)
            elif current.kind is TokenKind.REDIRECT:
                op_token = self._advance()
                target = self._expect_word(f"target of {op_token.op!r}")
                if op_token.op.startswith("-"):
                    name = target.literal_text()
                    if name is None or not is_identifier(name):
                        raise self._error(
                            f"variable redirection {op_token.op!r} needs a plain "
                            f"variable name, got {target}",
                            op_token,
                        )
                redirects.append(Redirect(op_token.op, target))
            else:
                break
        if not words:
            raise self._error("redirection with no command", token)
        self._expect_newline("command")
        return Command(tuple(words), tuple(redirects), line=token.line,
                       column=token.column)

    # -- try ----------------------------------------------------------------
    def _parse_try(self) -> Try:
        try_token = self._advance()
        limits = self._parse_try_limits(try_token)
        self._expect_newline("'try' header")
        body = self._parse_statements(stop=frozenset({"catch", "end"}))
        catch: Group | None = None
        if self._peek_keyword() == "catch":
            self._advance()
            self._expect_newline("'catch'")
            catch = self._parse_statements(stop=frozenset({"end"}))
        self._expect_block_end("try", try_token)
        return Try(limits, body, catch, line=try_token.line,
                   column=try_token.column)

    def _parse_try_limits(self, try_token: Token) -> TryLimits:
        duration: float | None = None
        attempts: int | None = None
        every: float | None = None
        duration_unit: str | None = None
        every_unit: str | None = None
        saw_clause = False
        if self._peek_keyword() == "forever":
            self._advance()
            saw_clause = True
        while self._peek().kind is TokenKind.WORD:
            keyword = self._peek_keyword()
            if keyword == "or" and saw_clause:
                self._advance()
                keyword = self._peek_keyword()
            if keyword == "for":
                if duration is not None:
                    raise self._error("duplicate 'for' clause in try")
                self._advance()
                duration, duration_unit = self._parse_duration("try for")
            elif keyword == "every":
                if every is not None:
                    raise self._error("duplicate 'every' clause in try")
                self._advance()
                every, every_unit = self._parse_duration("try every")
            else:
                # expect: NUMBER times
                count = self._parse_count_clause()
                if count is None:
                    raise self._error(
                        "expected 'for <time>', '<n> times', 'every <time>' "
                        "or 'forever' in try header"
                    )
                if attempts is not None:
                    raise self._error("duplicate 'times' clause in try")
                attempts = count
            saw_clause = True
        if not saw_clause:
            raise self._error(
                "try needs a limit: 'for <time>', '<n> times' or 'forever'", try_token
            )
        return TryLimits(duration=duration, attempts=attempts, every=every,
                         duration_unit=duration_unit, every_unit=every_unit)

    def _parse_duration(self, context: str) -> tuple[float, str]:
        """Parse ``NUMBER UNIT``; returns (seconds, unit-as-written)."""
        number_word = self._expect_word(context)
        text = number_word.literal_text()
        try:
            amount = float(text) if text is not None else None
        except ValueError:
            amount = None
        if amount is None:
            raise self._error(f"expected a number after {context!r}, got {number_word}")
        unit_word = self._expect_word(context)
        unit = unit_word.literal_text() or ""
        if not is_time_unit(unit):
            raise self._error(f"expected a time unit in {context!r}, got {unit_word}")
        return duration_seconds(amount, unit), unit

    def _parse_count_clause(self) -> int | None:
        token = self._peek()
        if token.kind is not TokenKind.WORD:
            return None
        text = token.word.literal_text()
        if text is None or not text.isdigit():
            return None
        self._advance()
        times = self._expect_word("'<n> times'")
        if times.keyword() not in ("times", "time"):
            raise self._error(f"expected 'times' after {text}, got {times}", token)
        count = int(text)
        if count < 1:
            raise self._error(f"try attempt count must be >= 1, got {count}", token)
        return count

    def _parse_function(self) -> FunctionDef:
        head = self._advance()
        name_word = self._expect_word("'function'")
        name = name_word.literal_text()
        if name is None or not is_identifier(name):
            raise self._error(f"function needs a plain name, got {name_word}", head)
        self._expect_newline("'function' header")
        body = self._parse_statements(stop=frozenset({"end"}))
        self._expect_block_end("function", head)
        return FunctionDef(name, body, line=head.line, column=head.column)

    # -- forany / forall ------------------------------------------------------
    def _parse_forloop(self, keyword: str) -> ForAny | ForAll:
        head = self._advance()
        var_word = self._expect_word(f"'{keyword}' variable")
        var = var_word.literal_text()
        if var is None or not is_identifier(var):
            raise self._error(f"{keyword} needs a variable name, got {var_word}", head)
        in_word = self._expect_word(f"'{keyword} {var}'")
        if in_word.keyword() != "in":
            raise self._error(f"expected 'in' after {keyword} {var}, got {in_word}")
        values: list[Word] = []
        while self._peek().kind is TokenKind.WORD:
            values.append(self._advance().word)
        if not values:
            raise self._error(f"{keyword} needs at least one alternative", head)
        self._expect_newline(f"'{keyword}' header")
        body = self._parse_statements(stop=frozenset({"end"}))
        self._expect_block_end(keyword, head)
        node = ForAny if keyword == "forany" else ForAll
        return node(var, tuple(values), body, line=head.line, column=head.column)

    # -- if ---------------------------------------------------------------------
    def _parse_if(self) -> If:
        head = self._advance()
        condition = self._parse_expr(head)
        self._expect_newline("'if' condition")
        then = self._parse_statements(stop=frozenset({"else", "end"}))
        orelse: Group | None = None
        if self._peek_keyword() == "else":
            self._advance()
            self._expect_newline("'else'")
            orelse = self._parse_statements(stop=frozenset({"end"}))
        self._expect_block_end("if", head)
        return If(condition, then, orelse, line=head.line, column=head.column)

    def _parse_expr(self, head: Token) -> Expr:
        expr = self._parse_or(head)
        token = self._peek()
        if token.kind is TokenKind.WORD:
            raise self._error(f"unexpected {token} in condition")
        return expr

    def _parse_or(self, head: Token) -> Expr:
        expr = self._parse_and(head)
        while self._peek_keyword() == ".or.":
            self._advance()
            expr = BoolOp(".or.", expr, self._parse_and(head))
        return expr

    def _parse_and(self, head: Token) -> Expr:
        expr = self._parse_not(head)
        while self._peek_keyword() == ".and.":
            self._advance()
            expr = BoolOp(".and.", expr, self._parse_not(head))
        return expr

    def _parse_not(self, head: Token) -> Expr:
        if self._peek_keyword() == ".not.":
            self._advance()
            return Not(self._parse_not(head))
        if self._peek_keyword() == ".defined.":
            self._advance()
            name_word = self._expect_word("'.defined.'")
            name = name_word.literal_text()
            valid = name is not None and (
                is_identifier(name) or name.isdigit() or name == "#"
            )
            if not valid:
                raise self._error(
                    f".defined. needs a plain variable name, got {name_word}"
                )
            return Defined(name)
        return self._parse_primary(head)

    def _parse_primary(self, head: Token) -> Expr:
        token = self._peek()
        if token.kind is not TokenKind.WORD:
            raise self._error("condition ended unexpectedly", head)
        if token.word.keyword() == "(":
            self._advance()
            inner = self._parse_or(head)
            close = self._peek()
            if close.kind is not TokenKind.WORD or close.word.keyword() != ")":
                raise self._error("missing ')' in condition", token)
            self._advance()
            return inner
        lhs = self._advance().word
        op_keyword = self._peek_keyword()
        if op_keyword in _COMPARATORS:
            self._advance()
            rhs = self._expect_word(f"right side of {op_keyword}")
            return Comparison(op_keyword, lhs, rhs)
        return Truth(lhs)

    # -- helpers -------------------------------------------------------------
    def _expect_block_end(self, construct: str, head: Token) -> None:
        if self._peek_keyword() != "end":
            raise self._error(
                f"missing 'end' for {construct!r} starting at line {head.line}"
            )
        self._advance()
        token = self._peek()
        if token.kind is TokenKind.NEWLINE:
            self._advance()
        elif token.kind is not TokenKind.EOF:
            raise self._error(f"expected end of line after 'end', got {token}")


def parse(text: str, source_name: str = "<script>") -> Script:
    """Parse ftsh source text into a :class:`Script`."""
    return Parser(tokenize(text), source_name).parse_script()


@lru_cache(maxsize=512)
def parse_cached(text: str, source_name: str = "<script>") -> Script:
    """Parse with memoization, returning a *shared* immutable Script.

    Scenario campaigns re-run the same script text once per client per
    replicate (hundreds of times per cell); the AST is a tree of frozen
    dataclasses and the interpreter never mutates it (asserted by
    ``tests/core/test_parse_cache.py``'s pretty-print canary), so one
    parse per distinct ``(text, source_name)`` pair suffices.
    ``source_name`` is part of the key because it is baked into the
    Script for diagnostics.  Syntax errors are not cached — ``lru_cache``
    only memoizes successful returns, so a failing parse re-raises with
    its original diagnostics every time.
    """
    return parse(text, source_name)
