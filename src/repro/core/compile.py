"""AST→plan compiler: flat execution plans shared by both runtimes.

``parse_cached`` already amortises lexing and parsing, but the evaluator
still re-walked the AST on every statement, every ``try`` attempt and
every ``forall`` branch: isinstance dispatch, per-part word joins, dict
lookups per variable expansion, and span/log detail strings built even
when telemetry is off.  This module compiles a parsed
:class:`~repro.core.ast_nodes.Script` once into an immutable
:class:`ScriptPlan` of compact op records:

* variable references are resolved to integer *slots* in a per-script
  slot table; a :class:`Frame` caches slot values next to the authoritative
  :class:`~repro.core.variables.Scope` so repeated expansions skip the
  chain-of-maps walk (writes always go through the scope too, keeping
  ``flatten()``, spooling and REPL persistence exact);
* words and expression operands are pre-split into constant and
  substitution segments — an all-constant argv is expanded (and its log
  string joined) exactly once, at compile time;
* ``try`` windows, attempt budgets and ``every`` overrides are
  precomputed so the retry loop re-enters a plan, not a tree walk;
* group / forany / forall bodies are flattened into op tuples, and
  ``success`` atoms (no-ops) are dropped at compile time.

The plan dispatches over the *same* sans-IO effect protocol with the
same error semantics, log events, spans and metrics as the tree-walking
evaluator — the equivalence suite asserts identical ShellLog streams —
but skips span-name and log-detail construction when the observability
context is disabled or the log level filters the event.

``compile_cached`` sits beside ``parse_cached``: it is keyed by AST
identity (``parse_cached`` returns shared ``Script`` objects), holding a
strong reference to the script so an id() can never be reused while its
entry is alive.  ``$REPRO_NO_COMPILE=1`` (or ``ftsh --no-compile``)
falls back to the tree-walking evaluator.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Generator, NamedTuple, Optional

from . import ast_nodes as ast
from .backoff import BackoffState
from .effects import (
    CommandResult,
    Effect,
    GetRandom,
    GetTime,
    ParallelBranch,
    ParallelResult,
    RunCommand,
    RunParallel,
    Sleep,
    SleepResult,
)
from .errors import (
    FtshCancelled,
    FtshFailure,
    FtshRuntimeError,
    FtshTimeout,
)
from .expressions import _NUMERIC, _STRING, _to_number, truthy
from .interpreter import MAX_FUNCTION_DEPTH, ZERO_PROGRESS_QUANTUM
from .shell_log import LOG_COMMANDS, LOG_TRACE, EventKind
from .timeline import UNBOUNDED
from .tokens import VarRef, Word
from .variables import Scope

EvalGen = Generator[Effect, Any, None]

#: Field-less effects carry no state, so one instance serves every yield —
#: drivers dispatch on type, never on identity or mutation.
_GET_TIME = GetTime()
_GET_RANDOM = GetRandom()
#: Raw allocator for the hot-path RunCommand construction: the dataclass
#: __init__ burns time on keyword plumbing for fields the static-capture
#: path always sets explicitly anyway.
_RC_NEW = RunCommand.__new__


# ----------------------------------------------------------------------
# Escape hatch
# ----------------------------------------------------------------------
def compilation_enabled(override: Optional[bool] = None) -> bool:
    """Whether scripts should be compiled before execution.

    ``override`` (an explicit ``compile=`` argument or ``--no-compile``
    flag) wins; otherwise ``$REPRO_NO_COMPILE`` set to a truthy value
    selects the tree-walking evaluator.
    """
    if override is not None:
        return override
    flag = os.environ.get("REPRO_NO_COMPILE", "")
    return flag.strip().lower() in ("", "0", "false", "no", "off")


# ----------------------------------------------------------------------
# Runtime frame: slot cells over the authoritative Scope
# ----------------------------------------------------------------------
class Frame:
    """Per-execution slot cells layered over a :class:`Scope`.

    The scope stays the single source of truth (``flatten()``, spooling,
    parent-chain reads in forall branches); cells are a cache invalidated
    on unset/append and bypassed for spooled values, so a slot read is a
    list index instead of a chain-of-maps walk.
    """

    __slots__ = ("scope", "names", "index", "cells")

    def __init__(self, scope: Scope, names: tuple[str, ...], index: dict[str, int]) -> None:
        self.scope = scope
        self.names = names
        self.index = index
        self.cells: list[Optional[str]] = [None] * len(names)

    def load(self, slot: int) -> str:
        value = self.cells[slot]
        if value is None:
            # Not cached: initial variables, parent-chain reads, spooled
            # or appended values.  Raises UndefinedVariableError exactly
            # like the tree-walking expansion.
            return self.scope.get(self.names[slot])
        return value

    def store(self, slot: int, value: str) -> None:
        scope = self.scope
        scope.set(self.names[slot], value)
        spool = scope.spool
        if spool is not None and len(value) > spool.threshold:
            self.cells[slot] = None  # spilled to disk; read through the scope
        else:
            self.cells[slot] = value

    def append(self, slot: int, value: str) -> None:
        self.scope.append(self.names[slot], value)
        self.cells[slot] = None

    def store_by_name(self, name: str, value: str) -> None:
        slot = self.index.get(name)
        if slot is None:
            self.scope.set(name, value)
        else:
            self.store(slot, value)

    def unset_by_name(self, name: str) -> None:
        self.scope.unset(name)
        slot = self.index.get(name)
        if slot is not None:
            self.cells[slot] = None


class _SlotTable:
    """Interns variable names into slot indices during compilation."""

    def __init__(self) -> None:
        self.names: list[str] = []
        self.index: dict[str, int] = {}
        #: The frozen name tuple, stamped by finalize() once the whole
        #: script has compiled.  Shared (by identity) with the ScriptPlan
        #: and every FunctionPlan the script defines, so a function call
        #: can tell same-plan frames from foreign ones.
        self.final: tuple[str, ...] = ()

    def slot(self, name: str) -> int:
        got = self.index.get(name)
        if got is None:
            got = len(self.names)
            self.index[name] = got
            self.names.append(name)
        return got

    def finalize(self) -> tuple[str, ...]:
        self.final = tuple(self.names)
        return self.final


# ----------------------------------------------------------------------
# Compiled words and expressions
# ----------------------------------------------------------------------
class CompiledWord:
    """A word template pre-split into constant and substitution segments."""

    __slots__ = ("const", "segments", "quoted", "single")

    def __init__(self, const: Optional[str], segments: tuple, quoted: bool) -> None:
        #: The full text when the word has no variable parts, else None.
        self.const = const
        #: Alternating str (literal run) / int (variable slot) segments.
        self.segments = segments
        self.quoted = quoted
        #: The slot when the word is exactly one substitution (`${x}`) —
        #: the overwhelmingly common dynamic shape — letting the argv loop
        #: read the frame cell without a method call.
        self.single: Optional[int] = (
            segments[0] if len(segments) == 1 and segments[0].__class__ is int
            else None)

    def expand(self, frame: Frame) -> str:
        const = self.const
        if const is not None:
            return const
        chunks = []
        for segment in self.segments:
            if segment.__class__ is str:
                chunks.append(segment)
            else:
                chunks.append(frame.load(segment))
        return "".join(chunks)


def _compile_word(word: Word, table: _SlotTable) -> CompiledWord:
    segments: list = []
    buffer: list[str] = []
    constant = True
    quoted = False
    for part in word.parts:
        if part.quoted:
            quoted = True
        if isinstance(part, VarRef):
            if buffer:
                segments.append("".join(buffer))
                buffer = []
            segments.append(table.slot(part.name))
            constant = False
        else:
            buffer.append(part.text)
    if buffer:
        segments.append("".join(buffer))
    if constant:
        return CompiledWord("".join(segments), (), quoted)
    return CompiledWord(None, tuple(segments), quoted)


class _CmpNum:
    __slots__ = ("fn", "op", "lhs", "rhs")

    def __init__(self, fn, op: str, lhs: CompiledWord, rhs: CompiledWord) -> None:
        self.fn = fn
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def eval(self, frame: Frame) -> bool:
        # Expansion order and the operand-conversion order both match the
        # tree-walking evaluator, so the *first* failure is the same one.
        lhs = self.lhs.expand(frame)
        rhs = self.rhs.expand(frame)
        return self.fn(_to_number(lhs, self.op), _to_number(rhs, self.op))


class _CmpStr:
    __slots__ = ("fn", "lhs", "rhs")

    def __init__(self, fn, lhs: CompiledWord, rhs: CompiledWord) -> None:
        self.fn = fn
        self.lhs = lhs
        self.rhs = rhs

    def eval(self, frame: Frame) -> bool:
        return self.fn(self.lhs.expand(frame), self.rhs.expand(frame))


class _TruthExpr:
    __slots__ = ("operand",)

    def __init__(self, operand: CompiledWord) -> None:
        self.operand = operand

    def eval(self, frame: Frame) -> bool:
        return truthy(self.operand.expand(frame))


class _NotExpr:
    __slots__ = ("operand",)

    def __init__(self, operand) -> None:
        self.operand = operand

    def eval(self, frame: Frame) -> bool:
        return not self.operand.eval(frame)


class _DefinedExpr:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, frame: Frame) -> bool:
        return self.name in frame.scope


class _BoolExpr:
    __slots__ = ("is_or", "lhs", "rhs")

    def __init__(self, is_or: bool, lhs, rhs) -> None:
        self.is_or = is_or
        self.lhs = lhs
        self.rhs = rhs

    def eval(self, frame: Frame) -> bool:
        # Both sides always evaluate (order-independent failure behaviour),
        # exactly like expressions.evaluate.
        lhs = self.lhs.eval(frame)
        rhs = self.rhs.eval(frame)
        return (lhs or rhs) if self.is_or else (lhs and rhs)


def _compile_expr(expr: ast.Expr, table: _SlotTable):
    if isinstance(expr, ast.Comparison):
        lhs = _compile_word(expr.lhs, table)
        rhs = _compile_word(expr.rhs, table)
        numeric = _NUMERIC.get(expr.op)
        if numeric is not None:
            return _CmpNum(numeric, expr.op, lhs, rhs)
        return _CmpStr(_STRING[expr.op], lhs, rhs)
    if isinstance(expr, ast.Truth):
        return _TruthExpr(_compile_word(expr.operand, table))
    if isinstance(expr, ast.Not):
        return _NotExpr(_compile_expr(expr.operand, table))
    if isinstance(expr, ast.Defined):
        return _DefinedExpr(expr.name)
    if isinstance(expr, ast.BoolOp):
        return _BoolExpr(expr.op == ".or.",
                         _compile_expr(expr.lhs, table),
                         _compile_expr(expr.rhs, table))
    raise TypeError(f"unknown expression node: {expr!r}")  # pragma: no cover


class _CompiledRedirect:
    """One redirection with its dispatch decisions made at compile time."""

    __slots__ = ("to_variable", "is_input", "appends", "merges_stderr",
                 "name", "slot", "target")

    def __init__(self, redirect: ast.Redirect, table: _SlotTable) -> None:
        self.to_variable = redirect.to_variable
        self.is_input = redirect.is_input
        self.appends = redirect.appends
        self.merges_stderr = redirect.merges_stderr
        if self.to_variable:
            self.name = redirect.target.literal_text() or ""
            self.slot: Optional[int] = table.slot(self.name)
            self.target: Optional[CompiledWord] = None
        else:
            self.name = ""
            self.slot = None
            self.target = _compile_word(redirect.target, table)


# ----------------------------------------------------------------------
# Plan ops
# ----------------------------------------------------------------------
# Each op exposes run(interp, frame).  Ops that never yield effects
# (assignment, atoms, function definition) return None; the rest return
# an effect generator the group drives with `yield from`.  This keeps
# straight-line variable work free of generator overhead.


class GroupPlan:
    __slots__ = ("ops",)

    #: Class marker: run() returns an effect generator (sync ops say False).
    yields = True

    def __init__(self, ops: tuple) -> None:
        self.ops = ops

    def run(self, interp, frame: Frame) -> EvalGen:
        for op in self.ops:
            gen = op.run(interp, frame)
            if gen is not None:
                yield from gen


class _SyncPrefixGroup:
    """Sync ops followed by exactly one yielding op: no group generator.

    run() executes the sync prefix eagerly and hands back the tail's
    effect generator, so every effect send crosses one less delegation
    frame than a GroupPlan would cost.  Callers invoke run() from inside
    their own generator bodies immediately before ``yield from``, so the
    eager prefix is indistinguishable from GroupPlan's first resume —
    including where prefix exceptions surface.
    """

    __slots__ = ("prefix", "tail")

    yields = True

    def __init__(self, prefix: tuple, tail) -> None:
        self.prefix = prefix
        self.tail = tail

    def run(self, interp, frame: Frame) -> EvalGen:
        for op in self.prefix:
            op.run(interp, frame)
        return self.tail.run(interp, frame)


class AssignOp:
    __slots__ = ("name", "slot", "value", "line")

    yields = False

    def __init__(self, name: str, slot: int, value: CompiledWord, line: int) -> None:
        self.name = name
        self.slot = slot
        self.value = value
        self.line = line

    def run(self, interp, frame: Frame) -> None:
        value = self.value.expand(frame)
        frame.store(self.slot, value)
        log = interp.log
        if log.level >= LOG_TRACE:
            log.record(EventKind.ASSIGNMENT, f"{self.name}={value!r}", self.line)
        return None


class FailureOp:
    __slots__ = ("line",)

    yields = False

    def __init__(self, line: int) -> None:
        self.line = line

    def run(self, interp, frame: Frame) -> None:
        if interp.log.level >= LOG_COMMANDS:
            interp.log.record(EventKind.FAILURE_ATOM, line=self.line)
        raise FtshFailure("failure atom")


class FunctionPlan:
    """A compiled function body registered under its name at run time.

    Carries the slot table of the script that compiled it: a REPL session
    keeps registered functions across entries, and a later entry's frame
    speaks a different slot table than the plan's body.
    """

    __slots__ = ("name", "body", "table")

    def __init__(self, name: str, body: GroupPlan, table: _SlotTable) -> None:
        self.name = name
        self.body = body
        self.table = table


class FuncDefOp:
    __slots__ = ("plan",)

    yields = False

    def __init__(self, plan: FunctionPlan) -> None:
        self.plan = plan

    def run(self, interp, frame: Frame) -> None:
        interp.functions[self.plan.name] = self.plan
        return None


def _call_function(interp, frame: Frame, plan: FunctionPlan,
                   argv: list[str], line: int, has_redirects: bool) -> EvalGen:
    """Compiled twin of Interpreter.call_function (same stack discipline)."""
    if has_redirects:
        raise FtshFailure(f"cannot redirect function call {plan.name!r}")
    if interp._call_depth >= MAX_FUNCTION_DEPTH:
        raise FtshFailure(f"function recursion deeper than {MAX_FUNCTION_DEPTH}")
    bindings = {"0": argv[0], "#": str(len(argv) - 1)}
    for index, arg in enumerate(argv[1:], start=1):
        bindings[str(index)] = arg
    scope = frame.scope
    table = plan.table
    if frame.names is table.final:
        body_frame = frame
        caller_frame = None
    else:
        # Cross-plan call (a REPL session carries functions across
        # entries): run the body over its own slot table.  The caller's
        # cells are wiped afterwards — the body may write any name.
        body_frame = Frame(scope, table.final, table.index)
        caller_frame = frame
    saved = {name: scope.lookup(name) for name in bindings}
    for name, value in bindings.items():
        body_frame.store_by_name(name, value)
    interp._call_depth += 1
    obs_on = interp._obs_on
    if obs_on:
        tracer = interp.obs.tracer
        span = tracer.start(f"function:{plan.name}", "function",
                            parent=interp._span, line=line or None)
        caller_span, interp._span = interp._span, span
    try:
        yield from plan.body.run(interp, body_frame)
        if obs_on:
            tracer.finish(span, "ok")
    except FtshFailure:
        if obs_on:
            tracer.finish(span, "failed")
        raise
    except FtshTimeout:
        if obs_on:
            tracer.finish(span, "timeout")
        raise
    except BaseException:
        if obs_on:
            tracer.finish(span, "cancelled")
        raise
    finally:
        if obs_on:
            interp._span = caller_span
        interp._call_depth -= 1
        for name, previous in saved.items():
            if previous is None:
                body_frame.unset_by_name(name)  # was unbound before the call
            else:
                body_frame.store_by_name(name, previous)
        if caller_frame is not None:
            caller_frame.cells = [None] * len(caller_frame.names)


class CommandOp:
    __slots__ = ("template", "const_argv", "const_joined", "redirects",
                 "has_redirects", "static_capture", "capture_flag",
                 "merge_flag", "capture_slot_static", "capture_append_static",
                 "line")

    yields = True

    def __init__(self, words: tuple[CompiledWord, ...],
                 redirects: tuple[_CompiledRedirect, ...], line: int) -> None:
        #: Argv template: plain str for constant words (elision already
        #: applied), CompiledWord for words needing expansion.  An empty
        #: unquoted constant word compiles away entirely.
        template: list = []
        for word in words:
            if word.const is not None:
                if word.const or word.quoted:
                    template.append(word.const)
            else:
                template.append(word)
        self.template = tuple(template)
        self.redirects = redirects
        self.has_redirects = bool(redirects)
        self.line = line
        if all(item.__class__ is str for item in template):
            self.const_argv: Optional[tuple[str, ...]] = tuple(template)
            self.const_joined: Optional[str] = " ".join(template)
        else:
            self.const_argv = None
            self.const_joined = None
        # Redirect sets that touch no scope/filesystem value at dispatch
        # time (only variable *captures*) collapse into constructor
        # arguments for the effect: replaying them per run is pure waste.
        self.static_capture = all(
            r.to_variable and not r.is_input for r in redirects)
        capture_slot = None
        capture_append = False
        merge = False
        if self.static_capture:
            for r in redirects:
                capture_slot = r.slot
                capture_append = r.appends
                merge = r.merges_stderr
        self.capture_flag = self.static_capture and bool(redirects)
        self.merge_flag = merge
        self.capture_slot_static = capture_slot
        self.capture_append_static = capture_append

    def run(self, interp, frame: Frame) -> EvalGen:
        const_argv = self.const_argv
        if const_argv is not None:
            if not const_argv:
                raise FtshFailure("command expanded to nothing")
            argv = list(const_argv)
            joined = self.const_joined
        else:
            argv = []
            for item in self.template:
                if item.__class__ is str:
                    argv.append(item)
                else:
                    slot = item.single
                    if slot is not None:
                        text = frame.cells[slot]
                        if text is None:
                            text = frame.scope.get(frame.names[slot])
                    else:
                        text = item.expand(frame)
                    if text or item.quoted:
                        argv.append(text)
            if not argv:
                raise FtshFailure("command expanded to nothing")
            joined = None
        name = argv[0]
        if name in interp.functions:
            yield from _call_function(interp, frame, interp.functions[name],
                                      argv, self.line, self.has_redirects)
            return

        stack = interp.deadlines._stack  # effective(), inlined for the hot path
        deadline = stack[-1] if stack else UNBOUNDED
        if self.static_capture:
            effect = _RC_NEW(RunCommand)
            effect.argv = argv
            effect.stdin_data = None
            effect.stdin_file = None
            effect.stdout_file = None
            effect.stdout_append = False
            effect.merge_stderr = self.merge_flag
            effect.capture = self.capture_flag
            effect.deadline = deadline
            capture_slot = self.capture_slot_static
            capture_append = self.capture_append_static
        else:
            effect = RunCommand(argv=argv, deadline=deadline)
            capture_slot = None
            capture_append = False
            for redirect in self.redirects:
                if redirect.to_variable:
                    if redirect.is_input:  # -<
                        effect.stdin_data = frame.load(redirect.slot)
                        effect.stdin_file = None
                    else:  # -> ->> ->& ->>&
                        capture_slot = redirect.slot
                        capture_append = redirect.appends
                        effect.capture = True
                        effect.merge_stderr = redirect.merges_stderr
                        effect.stdout_file = None
                else:
                    target = redirect.target.expand(frame)
                    if redirect.is_input:  # <
                        effect.stdin_file = target
                        effect.stdin_data = None
                    else:  # > >> >& >>&
                        effect.stdout_file = target
                        effect.stdout_append = redirect.appends
                        effect.merge_stderr = redirect.merges_stderr
                        effect.capture = False
                        capture_slot = None

        log = interp.log
        commands_on = log.level >= LOG_COMMANDS
        if commands_on:
            if joined is None:
                joined = " ".join(argv)
            log.record(EventKind.COMMAND_START, joined, self.line)
        obs_on = interp._obs_on
        if obs_on:
            tracer = interp.obs.tracer
            span = tracer.start(f"command:{name}", "command", parent=interp._span,
                                argv=joined if joined is not None else " ".join(argv),
                                line=self.line or None)
        try:
            result: CommandResult = yield effect
        except BaseException:
            if obs_on:
                tracer.finish(span, "cancelled")
                interp._m_commands.labels(command=name, outcome="cancelled").inc()
            raise
        if result.timed_out:
            if commands_on:
                log.record(EventKind.COMMAND_TIMEOUT, joined, self.line)
            if obs_on:
                tracer.finish(span, "timeout", detail=result.detail or None)
                interp._m_commands.labels(command=name, outcome="timeout").inc()
            # The stack cannot change while the command runs (only this
            # interpreter pushes/pops), so the precomputed deadline is
            # still the effective one.
            raise FtshTimeout(deadline, f"{name} hit time limit")
        if result.exit_code != 0:
            if commands_on:
                log.record(
                    EventKind.COMMAND_FAILED,
                    f"{joined} exited {result.exit_code} {result.detail}".rstrip(),
                    self.line,
                )
            if obs_on:
                tracer.finish(span, "failed", exit_code=result.exit_code,
                              detail=result.detail or None)
                interp._m_commands.labels(command=name, outcome="failed").inc()
            raise FtshFailure(f"{name} exited {result.exit_code}")
        if capture_slot is not None:
            text = (result.output or "").rstrip("\n")
            if capture_append:
                frame.append(capture_slot, text)
            else:
                frame.store(capture_slot, text)
        if commands_on:
            log.record(EventKind.COMMAND_END, name, self.line)
        if obs_on:
            tracer.finish(span, "ok")
            interp._m_commands.labels(command=name, outcome="ok").inc()
            if span.end is not None:
                interp._m_command_seconds.labels(command=name).observe(span.duration)


class TryOp:
    __slots__ = ("duration", "attempts", "every", "body", "catch", "line")

    yields = True

    def __init__(self, limits: ast.TryLimits, body: GroupPlan,
                 catch: Optional[GroupPlan], line: int) -> None:
        #: Window / budget / fixed-delay parameters, precomputed (the
        #: parser already normalised units to seconds).
        self.duration = limits.duration
        self.attempts = limits.attempts
        self.every = limits.every
        self.body = body
        self.catch = catch
        self.line = line

    def run(self, interp, frame: Frame) -> EvalGen:
        now = yield _GET_TIME
        log = interp.log
        level = log.level
        trace_on = level >= LOG_TRACE
        commands_on = level >= LOG_COMMANDS
        obs_on = interp._obs_on
        if obs_on:
            tracer = interp.obs.tracer
            span = tracer.start(
                "try", "try", parent=interp._span, line=self.line or None,
                limit_seconds=self.duration, limit_attempts=self.attempts,
            )
            enclosing, interp._span = interp._span, span
        else:
            tracer = None
            span = None
        deadlines = interp.deadlines
        try:
            # --- the retry loop (tree-walk twin: _try_attempts) ---
            # AttemptBudget and DeadlineStack.clip are inlined here: after
            # our push, the stack top IS `clipped` between attempts (the
            # stack is non-increasing), so clip(delay, now) reduces to
            # max(0, min(delay, clipped - now)).
            wanted = UNBOUNDED if self.duration is None else now + self.duration
            clipped = deadlines.push(wanted)
            max_attempts = self.attempts
            if max_attempts is not None and max_attempts < 1:
                raise ValueError(
                    f"max_attempts must be >= 1, got {max_attempts}")
            every = self.every
            line = self.line
            body_run = self.body.run
            backoff = BackoffState(interp.policy)
            succeeded = False
            attempts = 0
            attempt_start = now
            try:
                while True:
                    attempts += 1
                    if trace_on:
                        log.record(EventKind.TRY_ATTEMPT,
                                   f"attempt {attempts}", line)
                    if obs_on:
                        interp._m_attempts.inc()
                        attempt_span = tracer.start(
                            f"attempt:{attempts}", "attempt", parent=span
                        )
                        interp._span = attempt_span
                    try:
                        yield from body_run(interp, frame)
                        succeeded = True
                        if obs_on:
                            tracer.finish(attempt_span, "ok")
                        if commands_on:
                            log.record(EventKind.TRY_SUCCESS,
                                       f"after {attempts}", line)
                        break
                    except FtshFailure:
                        if obs_on:
                            tracer.finish(attempt_span, "failed")
                    except FtshTimeout as timeout:
                        if obs_on:
                            tracer.finish(attempt_span, "timeout")
                        if timeout.deadline < clipped:
                            raise  # belongs to an enclosing try
                        break  # our own window expired mid-attempt
                    except BaseException:
                        if obs_on:
                            tracer.finish(attempt_span, "cancelled")
                        raise
                    finally:
                        if obs_on:
                            interp._span = span
                    now = yield _GET_TIME
                    if (max_attempts is not None and attempts >= max_attempts) \
                            or now >= clipped:
                        break  # budget exhausted (inlined may_retry)
                    if every is not None:
                        delay = every
                    else:
                        jitter = yield _GET_RANDOM
                        delay = backoff.next_delay_from_jitter(jitter)
                    if delay <= 0 and now <= attempt_start:
                        # Zero-delay retry of a zero-time attempt would
                        # livelock a virtual clock; minimal quantum.
                        delay = ZERO_PROGRESS_QUANTUM
                    attempt_start = now
                    remaining = clipped - now
                    if delay > remaining:
                        delay = remaining
                    if delay > 0:
                        if commands_on:
                            log.record(
                                EventKind.TRY_BACKOFF,
                                f"failure {backoff.failures}: waiting {delay:.3f}s",
                                line,
                                value=delay,
                            )
                        if obs_on:
                            interp._m_backoffs.inc()
                            interp._m_backoff_seconds.observe(delay)
                            sleep_span = tracer.start(
                                f"backoff:{attempts}", "backoff",
                                parent=span, delay=delay,
                            )
                        try:
                            sleep_result: SleepResult = yield Sleep(delay, clipped)
                        except BaseException:
                            if obs_on:
                                tracer.finish(sleep_span, "cancelled")
                            raise
                        if obs_on:
                            tracer.finish(sleep_span, "ok", slept=sleep_result.slept)
                        if sleep_result.timed_out:
                            break
                        attempt_start = now + sleep_result.slept
            finally:
                deadlines.pop()
                if not succeeded:
                    if commands_on:
                        log.record(EventKind.TRY_EXHAUSTED,
                                   f"after {attempts} attempts", line)
                    if obs_on:
                        interp._m_exhausted.inc()
            if succeeded:
                if obs_on:
                    tracer.finish(span, "ok", attempts=attempts)
                return
            yield from self._after_exhausted(interp, frame, attempts, span,
                                             tracer, obs_on, commands_on, log)
        except FtshTimeout:
            if obs_on:
                tracer.finish(span, "timeout")
            raise
        except FtshFailure:
            if obs_on:
                tracer.finish(span, "failed")
            raise
        except BaseException:
            if obs_on:
                tracer.finish(span, "cancelled")
            raise
        finally:
            if obs_on:
                interp._span = enclosing

    def _after_exhausted(self, interp, frame: Frame, attempts: int, span,
                         tracer, obs_on: bool, commands_on: bool, log) -> EvalGen:
        # Exhausted.  The expired deadline is already popped, so the
        # catch block runs under the *enclosing* limits only.  (Cold
        # path: the extra generator frame only exists once exhaustion is
        # certain.)
        if self.catch is not None:
            if commands_on:
                log.record(EventKind.CATCH_ENTERED, line=self.line)
            if obs_on:
                interp._m_catches.inc()
                catch_span = tracer.start("catch", "catch", parent=span,
                                          line=self.line or None)
                interp._span = catch_span
            try:
                yield from self.catch.run(interp, frame)
                if obs_on:
                    tracer.finish(catch_span, "ok")
            except FtshFailure:
                if obs_on:
                    tracer.finish(catch_span, "failed")
                raise
            except FtshTimeout:
                if obs_on:
                    tracer.finish(catch_span, "timeout")
                raise
            except BaseException:
                if obs_on:
                    tracer.finish(catch_span, "cancelled")
                raise
            finally:
                if obs_on:
                    interp._span = span
            if obs_on:
                tracer.finish(span, "ok", attempts=attempts, caught=True)
            return
        if obs_on:
            tracer.finish(span, "failed", attempts=attempts)
        raise FtshFailure(f"try exhausted after {attempts} attempts")


class TryCommandOp(TryOp):
    """A ``try`` whose body is one static-capture command, fused.

    The compiler proved the body is a single :class:`CommandOp` with no
    dynamic redirects (only variable captures, or none), so the retry
    loop drives the command inline: no per-attempt body generator, no
    delegation frame under the effect send, and the attempt-failure
    ``FtshFailure`` — which this loop would catch immediately — is never
    materialised.  Every log event, span, metric and effect in the
    sequence is identical to the generic ``TryOp`` + ``CommandOp`` pair;
    the equivalence suite pins that.
    """

    __slots__ = ()

    def run(self, interp, frame: Frame) -> EvalGen:
        now = yield _GET_TIME
        log = interp.log
        level = log.level
        trace_on = level >= LOG_TRACE
        commands_on = level >= LOG_COMMANDS
        obs_on = interp._obs_on
        if obs_on:
            tracer = interp.obs.tracer
            span = tracer.start(
                "try", "try", parent=interp._span, line=self.line or None,
                limit_seconds=self.duration, limit_attempts=self.attempts,
            )
            enclosing, interp._span = interp._span, span
        else:
            tracer = None
            span = None
        deadlines = interp.deadlines
        body = self.body
        const_argv = body.const_argv
        template = body.template
        capture_slot = body.capture_slot_static
        capture_append = body.capture_append_static
        capture_flag = body.capture_flag
        merge_flag = body.merge_flag
        body_line = body.line
        functions = interp.functions
        cells = frame.cells
        try:
            # Same inlined AttemptBudget / DeadlineStack discipline as
            # TryOp.run: after our push the stack top IS `clipped` for the
            # whole loop (a one-command body never pushes), so the
            # command's effective deadline is `clipped` too.
            wanted = UNBOUNDED if self.duration is None else now + self.duration
            clipped = deadlines.push(wanted)
            max_attempts = self.attempts
            if max_attempts is not None and max_attempts < 1:
                raise ValueError(
                    f"max_attempts must be >= 1, got {max_attempts}")
            every = self.every
            line = self.line
            backoff = BackoffState(interp.policy)
            succeeded = False
            attempts = 0
            attempt_start = now
            try:
                while True:
                    attempts += 1
                    if trace_on:
                        log.record(EventKind.TRY_ATTEMPT,
                                   f"attempt {attempts}", line)
                    if obs_on:
                        interp._m_attempts.inc()
                        attempt_span = tracer.start(
                            f"attempt:{attempts}", "attempt", parent=span
                        )
                        interp._span = attempt_span
                    # `failed` stands in for the FtshFailure the generic
                    # body would raise across the frame boundary.
                    failed = False
                    try:
                        if const_argv is not None:
                            argv = list(const_argv)
                            joined = body.const_joined
                        else:
                            argv = []
                            for item in template:
                                if item.__class__ is str:
                                    argv.append(item)
                                else:
                                    slot = item.single
                                    if slot is not None:
                                        text = cells[slot]
                                        if text is None:
                                            text = frame.scope.get(
                                                frame.names[slot])
                                    else:
                                        text = item.expand(frame)
                                    if text or item.quoted:
                                        argv.append(text)
                            joined = None
                        if not argv:
                            failed = True  # "command expanded to nothing"
                        elif argv[0] in functions:
                            yield from _call_function(
                                interp, frame, functions[argv[0]], argv,
                                body_line, body.has_redirects)
                            # Function returned: the attempt succeeded.
                        else:
                            name = argv[0]
                            effect = _RC_NEW(RunCommand)
                            effect.argv = argv
                            effect.stdin_data = None
                            effect.stdin_file = None
                            effect.stdout_file = None
                            effect.stdout_append = False
                            effect.merge_stderr = merge_flag
                            effect.capture = capture_flag
                            effect.deadline = clipped
                            if commands_on:
                                if joined is None:
                                    joined = " ".join(argv)
                                log.record(EventKind.COMMAND_START,
                                           joined, body_line)
                            if obs_on:
                                cmd_span = tracer.start(
                                    f"command:{name}", "command",
                                    parent=interp._span,
                                    argv=joined if joined is not None
                                    else " ".join(argv),
                                    line=body_line or None)
                            try:
                                result = yield effect
                            except BaseException:
                                if obs_on:
                                    tracer.finish(cmd_span, "cancelled")
                                    interp._m_commands.labels(
                                        command=name,
                                        outcome="cancelled").inc()
                                raise
                            if result.timed_out:
                                if commands_on:
                                    log.record(EventKind.COMMAND_TIMEOUT,
                                               joined, body_line)
                                if obs_on:
                                    tracer.finish(cmd_span, "timeout",
                                                  detail=result.detail or None)
                                    interp._m_commands.labels(
                                        command=name, outcome="timeout").inc()
                                raise FtshTimeout(clipped,
                                                  f"{name} hit time limit")
                            if result.exit_code != 0:
                                if commands_on:
                                    log.record(
                                        EventKind.COMMAND_FAILED,
                                        f"{joined} exited {result.exit_code} "
                                        f"{result.detail}".rstrip(),
                                        body_line,
                                    )
                                if obs_on:
                                    tracer.finish(cmd_span, "failed",
                                                  exit_code=result.exit_code,
                                                  detail=result.detail or None)
                                    interp._m_commands.labels(
                                        command=name, outcome="failed").inc()
                                failed = True
                            else:
                                if capture_slot is not None:
                                    text = (result.output or "").rstrip("\n")
                                    if capture_append:
                                        frame.append(capture_slot, text)
                                    else:
                                        frame.store(capture_slot, text)
                                if commands_on:
                                    log.record(EventKind.COMMAND_END,
                                               name, body_line)
                                if obs_on:
                                    tracer.finish(cmd_span, "ok")
                                    interp._m_commands.labels(
                                        command=name, outcome="ok").inc()
                                    if cmd_span.end is not None:
                                        interp._m_command_seconds.labels(
                                            command=name).observe(
                                                cmd_span.duration)
                        if not failed:
                            succeeded = True
                            if obs_on:
                                tracer.finish(attempt_span, "ok")
                            if commands_on:
                                log.record(EventKind.TRY_SUCCESS,
                                           f"after {attempts}", line)
                            break
                        if obs_on:
                            tracer.finish(attempt_span, "failed")
                    except FtshFailure:
                        if obs_on:
                            tracer.finish(attempt_span, "failed")
                    except FtshTimeout as timeout:
                        if obs_on:
                            tracer.finish(attempt_span, "timeout")
                        if timeout.deadline < clipped:
                            raise  # belongs to an enclosing try
                        break  # our own window expired mid-attempt
                    except BaseException:
                        if obs_on:
                            tracer.finish(attempt_span, "cancelled")
                        raise
                    finally:
                        if obs_on:
                            interp._span = span
                    now = yield _GET_TIME
                    if (max_attempts is not None and attempts >= max_attempts) \
                            or now >= clipped:
                        break  # budget exhausted (inlined may_retry)
                    if every is not None:
                        delay = every
                    else:
                        jitter = yield _GET_RANDOM
                        delay = backoff.next_delay_from_jitter(jitter)
                    if delay <= 0 and now <= attempt_start:
                        delay = ZERO_PROGRESS_QUANTUM
                    attempt_start = now
                    remaining = clipped - now
                    if delay > remaining:
                        delay = remaining
                    if delay > 0:
                        if commands_on:
                            log.record(
                                EventKind.TRY_BACKOFF,
                                f"failure {backoff.failures}: waiting {delay:.3f}s",
                                line,
                                value=delay,
                            )
                        if obs_on:
                            interp._m_backoffs.inc()
                            interp._m_backoff_seconds.observe(delay)
                            sleep_span = tracer.start(
                                f"backoff:{attempts}", "backoff",
                                parent=span, delay=delay,
                            )
                        try:
                            sleep_result = yield Sleep(delay, clipped)
                        except BaseException:
                            if obs_on:
                                tracer.finish(sleep_span, "cancelled")
                            raise
                        if obs_on:
                            tracer.finish(sleep_span, "ok",
                                          slept=sleep_result.slept)
                        if sleep_result.timed_out:
                            break
                        attempt_start = now + sleep_result.slept
            finally:
                deadlines.pop()
                if not succeeded:
                    if commands_on:
                        log.record(EventKind.TRY_EXHAUSTED,
                                   f"after {attempts} attempts", line)
                    if obs_on:
                        interp._m_exhausted.inc()
            if succeeded:
                if obs_on:
                    tracer.finish(span, "ok", attempts=attempts)
                return
            yield from self._after_exhausted(interp, frame, attempts, span,
                                             tracer, obs_on, commands_on, log)
        except FtshTimeout:
            if obs_on:
                tracer.finish(span, "timeout")
            raise
        except FtshFailure:
            if obs_on:
                tracer.finish(span, "failed")
            raise
        except BaseException:
            if obs_on:
                tracer.finish(span, "cancelled")
            raise
        finally:
            if obs_on:
                interp._span = enclosing


class ForAnyOp:
    __slots__ = ("var", "slot", "values", "body", "line")

    yields = True

    def __init__(self, var: str, slot: int, values: tuple[CompiledWord, ...],
                 body: GroupPlan, line: int) -> None:
        self.var = var
        self.slot = slot
        self.values = values
        self.body = body
        self.line = line

    def run(self, interp, frame: Frame) -> EvalGen:
        log = interp.log
        trace_on = log.level >= LOG_TRACE
        obs_on = interp._obs_on
        if obs_on:
            tracer = interp.obs.tracer
            span = tracer.start(f"forany:{self.var}", "forany",
                                parent=interp._span, line=self.line or None,
                                alternatives=len(self.values))
            enclosing, interp._span = interp._span, span
        last_failure: Optional[FtshFailure] = None
        try:
            for value_word in self.values:
                value = value_word.expand(frame)
                frame.store(self.slot, value)
                if trace_on:
                    log.record(EventKind.FORANY_PICK,
                               f"{self.var}={value}", self.line)
                if obs_on:
                    interp._m_forany_picks.inc()
                    alt_span = tracer.start(f"alt:{value}", "alt", parent=span)
                    interp._span = alt_span
                try:
                    yield from self.body.run(interp, frame)
                    if obs_on:
                        tracer.finish(alt_span, "ok")
                        tracer.finish(span, "ok", winner=value)
                    return  # winner; the variable keeps the successful value
                except FtshFailure as failure:
                    if obs_on:
                        tracer.finish(alt_span, "failed")
                    last_failure = failure
                except FtshTimeout:
                    if obs_on:
                        tracer.finish(alt_span, "timeout")
                    raise
                except BaseException:
                    if obs_on:
                        tracer.finish(alt_span, "cancelled")
                    raise
                finally:
                    if obs_on:
                        interp._span = span
            reason = last_failure.reason if last_failure else "no alternatives"
            if obs_on:
                tracer.finish(span, "failed")
            raise FtshFailure(f"forany exhausted all alternatives (last: {reason})")
        except FtshTimeout:
            if obs_on:
                tracer.finish(span, "timeout")
            raise
        except BaseException:
            if obs_on:
                tracer.finish(span, "cancelled")
            raise
        finally:
            if obs_on:
                interp._span = enclosing


def _run_branch(interp, body: GroupPlan, frame: Frame) -> EvalGen:
    """A forall branch body as its own effect generator."""
    yield from body.run(interp, frame)


class ForAllOp:
    __slots__ = ("var", "slot", "values", "body", "line")

    yields = True

    def __init__(self, var: str, slot: int, values: tuple[CompiledWord, ...],
                 body: GroupPlan, line: int) -> None:
        self.var = var
        self.slot = slot
        self.values = values
        self.body = body
        self.line = line

    def run(self, interp, frame: Frame) -> EvalGen:
        log = interp.log
        trace_on = log.level >= LOG_TRACE
        obs_on = interp._obs_on
        if obs_on:
            tracer = interp.obs.tracer
            span = tracer.start(f"forall:{self.var}", "forall",
                                parent=interp._span, line=self.line or None,
                                branches=len(self.values))
        else:
            tracer = None
            span = None
        cls = interp.__class__
        names, index = frame.names, frame.index
        branch_spans = []
        branches: list[ParallelBranch] = []
        for position, value_word in enumerate(self.values):
            value = value_word.expand(frame)
            branch_scope = frame.scope.child()
            branch_frame = Frame(branch_scope, names, index)
            branch_frame.store(self.slot, value)
            if obs_on:
                branch_span = tracer.start(f"branch:{self.var}={value}",
                                           "branch", parent=span)
            else:
                branch_span = None
            branch_spans.append(branch_span)
            branch = cls(branch_scope, interp.policy, interp.log,
                         functions=interp.functions,
                         obs=interp.obs, span_parent=branch_span)
            # Branches inherit the current effective deadline as their base.
            branch.deadlines.push(interp.deadlines.effective())
            generator = _run_branch(branch, self.body, branch_frame)
            branches.append(
                ParallelBranch(f"{self.var}={value}#{position}", generator))
            if trace_on:
                log.record(EventKind.FORALL_SPAWN,
                           f"{self.var}={value}", self.line)
            if obs_on:
                interp._m_forall_branches.inc()

        try:
            result: ParallelResult = yield RunParallel(
                branches, deadline=interp.deadlines.effective()
            )
        except BaseException:
            if obs_on:
                for branch_span in branch_spans:
                    tracer.finish(branch_span, "cancelled")
                tracer.finish(span, "cancelled")
            raise
        if len(result.outcomes) != len(branches):
            if obs_on:
                tracer.finish(span, "failed")
            raise FtshRuntimeError(
                f"driver returned {len(result.outcomes)} outcomes for "
                f"{len(branches)} branches"
            )
        timeout: Optional[FtshTimeout] = None
        failure: Optional[BaseException] = None
        for outcome, branch_span in zip(result.outcomes, branch_spans):
            if outcome is None:
                if obs_on:
                    tracer.finish(branch_span, "ok")
                continue
            if isinstance(outcome, FtshTimeout):
                # Escaped every try inside the branch: belongs to one of
                # *our* enclosing scopes; keep the earliest.
                if obs_on:
                    tracer.finish(branch_span, "timeout")
                if timeout is None or outcome.deadline < timeout.deadline:
                    timeout = outcome
            elif isinstance(outcome, FtshCancelled):
                if obs_on:
                    tracer.finish(branch_span, "cancelled")
                failure = failure or outcome
            elif isinstance(outcome, FtshFailure):
                if obs_on:
                    tracer.finish(branch_span, "failed")
                failure = failure or outcome
            else:
                if obs_on:
                    tracer.finish(branch_span, "failed")
                    tracer.finish(span, "failed")
                raise outcome  # driver bug or interpreter defect: surface it
        if timeout is not None:
            if obs_on:
                tracer.finish(span, "timeout")
            raise timeout
        if failure is not None:
            if obs_on:
                tracer.finish(span, "failed")
            raise FtshFailure(f"forall branch failed: {failure}")
        if obs_on:
            tracer.finish(span, "ok")


class IfOp:
    __slots__ = ("condition", "then", "orelse", "line")

    yields = True

    def __init__(self, condition, then: GroupPlan,
                 orelse: Optional[GroupPlan], line: int) -> None:
        self.condition = condition
        self.then = then
        self.orelse = orelse
        self.line = line

    def run(self, interp, frame: Frame) -> EvalGen:
        verdict = self.condition.eval(frame)
        log = interp.log
        if log.level >= LOG_TRACE:
            log.record(EventKind.CONDITION, str(verdict), self.line)
        if verdict:
            yield from self.then.run(interp, frame)
        elif self.orelse is not None:
            yield from self.orelse.run(interp, frame)


# ----------------------------------------------------------------------
# The plan itself
# ----------------------------------------------------------------------
class ScriptPlan:
    """A compiled script: a flat op tree plus its slot table."""

    __slots__ = ("body", "names", "index", "source_name")

    def __init__(self, body: GroupPlan, names: tuple[str, ...],
                 index: dict[str, int], source_name: str) -> None:
        self.body = body
        self.names = names
        self.index = index
        self.source_name = source_name

    def execute(self, interp, overall_deadline: float = UNBOUNDED) -> EvalGen:
        """Evaluate under ``interp`` — the twin of Interpreter._execute_top."""
        return _execute_plan(self, interp, overall_deadline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = self.body
        if isinstance(body, GroupPlan):
            ops = len(body.ops)
        elif isinstance(body, _SyncPrefixGroup):
            ops = len(body.prefix) + 1
        else:
            ops = 1
        return (f"<ScriptPlan {self.source_name!r} ops={ops} "
                f"slots={len(self.names)}>")


def _execute_plan(plan: ScriptPlan, interp, overall_deadline: float) -> EvalGen:
    interp.deadlines.push(overall_deadline)
    frame = Frame(interp.scope, plan.names, plan.index)
    log = interp.log
    obs_on = interp._obs_on
    if obs_on:
        tracer = interp.obs.tracer
        span = tracer.start("script", "script", parent=interp._span)
        outer, interp._span = interp._span, span
    try:
        yield from plan.body.run(interp, frame)
        log.record(EventKind.SCRIPT_RESULT, "success")
        if obs_on:
            tracer.finish(span, "ok")
            interp._m_scripts.labels(result="success").inc()
    except FtshFailure as failure:
        log.record(EventKind.SCRIPT_RESULT, f"failure: {failure.reason}")
        if obs_on:
            tracer.finish(span, "failed", reason=failure.reason)
            interp._m_scripts.labels(result="failure").inc()
        raise
    except FtshTimeout as timeout:
        log.record(EventKind.SCRIPT_RESULT, f"timeout: {timeout.reason}")
        if obs_on:
            tracer.finish(span, "timeout", reason=timeout.reason)
            interp._m_scripts.labels(result="timeout").inc()
        raise
    except BaseException:
        if obs_on:
            tracer.finish(span, "cancelled")
            interp._m_scripts.labels(result="cancelled").inc()
        raise
    finally:
        if obs_on:
            interp._span = outer
        interp.deadlines.pop()


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------
def _compile_group(group: ast.Group, table: _SlotTable):
    ops = []
    for statement in group.body:
        op = _compile_statement(statement, table)
        if op is not None:  # `success` atoms compile away
            ops.append(op)
    if len(ops) == 1 and ops[0].yields:
        # A single-statement body needs no group wrapper: the op's run()
        # is already the effect generator, saving one delegation frame on
        # every retry attempt (`try ... / one command / end` is the
        # paper's canonical shape).
        return ops[0]
    if ops and ops[-1].yields and not any(op.yields for op in ops[:-1]):
        # Straight-line sync work (assignments, function defs) feeding one
        # yielding statement: run the prefix eagerly, delegate to the tail.
        return _SyncPrefixGroup(tuple(ops[:-1]), ops[-1])
    return GroupPlan(tuple(ops))


def _compile_statement(node: ast.Statement, table: _SlotTable):
    if isinstance(node, ast.Command):
        words = tuple(_compile_word(word, table) for word in node.words)
        redirects = tuple(_CompiledRedirect(r, table) for r in node.redirects)
        return CommandOp(words, redirects, node.line)
    if isinstance(node, ast.Assignment):
        return AssignOp(node.name, table.slot(node.name),
                        _compile_word(node.value, table), node.line)
    if isinstance(node, ast.Try):
        body = _compile_group(node.body, table)
        catch = _compile_group(node.catch, table) if node.catch is not None else None
        if body.__class__ is CommandOp and body.static_capture:
            # `try ... / one command [-> var] / end` — the paper's
            # canonical retry shape — gets the fused fast path.
            return TryCommandOp(node.limits, body, catch, node.line)
        return TryOp(node.limits, body, catch, node.line)
    if isinstance(node, ast.ForAny):
        return ForAnyOp(node.var, table.slot(node.var),
                        tuple(_compile_word(word, table) for word in node.values),
                        _compile_group(node.body, table), node.line)
    if isinstance(node, ast.ForAll):
        return ForAllOp(node.var, table.slot(node.var),
                        tuple(_compile_word(word, table) for word in node.values),
                        _compile_group(node.body, table), node.line)
    if isinstance(node, ast.If):
        orelse = _compile_group(node.orelse, table) if node.orelse is not None else None
        return IfOp(_compile_expr(node.condition, table),
                    _compile_group(node.then, table), orelse, node.line)
    if isinstance(node, ast.FailureAtom):
        return FailureOp(node.line)
    if isinstance(node, ast.SuccessAtom):
        return None
    if isinstance(node, ast.FunctionDef):
        return FuncDefOp(FunctionPlan(node.name,
                                      _compile_group(node.body, table), table))
    raise FtshRuntimeError(f"unknown statement node: {node!r}")  # pragma: no cover


def compile_script(script: ast.Script) -> ScriptPlan:
    """Compile a parsed script into an immutable execution plan."""
    table = _SlotTable()
    body = _compile_group(script.body, table)
    return ScriptPlan(body, table.finalize(), table.index, script.source_name)


# ----------------------------------------------------------------------
# compile_cached: the LRU beside parse_cached
# ----------------------------------------------------------------------
class CompileCacheInfo(NamedTuple):
    hits: int
    misses: int
    maxsize: int
    currsize: int


_CACHE_MAX = 256
_cache: "OrderedDict[int, tuple[ast.Script, ScriptPlan]]" = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0


def compile_cached(script: ast.Script) -> ScriptPlan:
    """Compile with an identity-keyed LRU.

    ``parse_cached`` returns shared ``Script`` objects, so identity is the
    natural (and cheapest) key; each entry pins its script, so an ``id``
    cannot be recycled while the entry lives.
    """
    global _cache_hits, _cache_misses
    key = id(script)
    with _cache_lock:
        entry = _cache.get(key)
        if entry is not None and entry[0] is script:
            _cache.move_to_end(key)
            _cache_hits += 1
            return entry[1]
    plan = compile_script(script)
    with _cache_lock:
        _cache_misses += 1
        _cache[key] = (script, plan)
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_MAX:
            _cache.popitem(last=False)
    return plan


def compile_cache_info() -> CompileCacheInfo:
    with _cache_lock:
        return CompileCacheInfo(_cache_hits, _cache_misses, _CACHE_MAX, len(_cache))


def compile_cache_clear() -> None:
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0
