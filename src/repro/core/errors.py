"""Exception hierarchy for the ftsh language and its runtimes.

ftsh deliberately exposes *untyped* failures: a procedure either succeeds
or fails, with no detail attached (paper, section 4).  Internally, however,
the implementation distinguishes a few kinds of control-flow events so the
interpreter can unwind correctly:

* :class:`FtshFailure` — an ordinary failure, equivalent to a command
  exiting nonzero or the ``failure`` atom.  Caught by ``try``/``catch``.
* :class:`FtshTimeout` — a ``try for`` limit expired.  This unwinds past
  the expired ``try`` (its own attempts must stop) but is converted into a
  plain failure at the boundary of the ``try`` whose deadline expired.
* :class:`FtshCancelled` — the whole evaluation was cancelled from
  outside (e.g. a losing ``forall`` branch being torn down).

None of these carry failure detail visible to the ftsh program; detail is
recorded only in the execution log for post-mortem analysis.
"""

from __future__ import annotations


class FtshError(Exception):
    """Base class for every error raised by this package."""


class FtshSyntaxError(FtshError):
    """A script failed to lex or parse.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    front-ends can point at the problem.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class FtshControl(FtshError):
    """Base class for control-flow signals used during evaluation."""


class FtshFailure(FtshControl):
    """A procedure failed (nonzero exit, ``failure`` atom, bad expansion)."""

    def __init__(self, reason: str = "failure") -> None:
        self.reason = reason
        super().__init__(reason)


class FtshTimeout(FtshControl):
    """A ``try for`` time limit expired at ``deadline``.

    The deadline identifies *which* enclosing ``try`` expired: each ``try``
    converts a timeout carrying its own deadline into an ordinary failure
    of itself, while timeouts belonging to outer scopes keep propagating.
    """

    def __init__(self, deadline: float, reason: str = "time limit expired") -> None:
        self.deadline = deadline
        self.reason = reason
        super().__init__(f"{reason} (deadline {deadline:.6g})")


class FtshCancelled(FtshControl):
    """Evaluation was cancelled from outside (forall teardown, shell stop)."""

    def __init__(self, reason: str = "cancelled") -> None:
        self.reason = reason
        super().__init__(reason)


class FtshRuntimeError(FtshError):
    """A defect in how the host program drives the interpreter.

    Unlike :class:`FtshFailure` this is *not* catchable from ftsh code; it
    indicates misuse (unknown effect, driver protocol violation, …).
    """


class UndefinedVariableError(FtshFailure):
    """Expansion referenced a variable with no binding.

    Modelled as a failure (not a hard error): in ftsh, a bad expansion
    makes the enclosing procedure fail, which ``try`` may then retry —
    useful when a variable is set by an earlier redirection that failed.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"undefined variable: {name!r}")


class SimulationError(FtshError):
    """Base class for defects detected inside the simulation kernel."""


class BudgetExceeded(SimulationError):
    """A bounded run (:meth:`repro.sim.Engine.run_budgeted`) hit its cap.

    ``budget`` names which cap tripped (``"events"`` or ``"sim-time"``)
    so sandboxes can map the overrun to a typed rejection.
    """

    def __init__(self, budget: str, limit: float, message: str) -> None:
        self.budget = budget
        self.limit = limit
        super().__init__(message)
