"""Generic traversal over the frozen ftsh AST.

The tree in :mod:`repro.core.ast_nodes` is a small closed set of
immutable dataclasses; this module gives every consumer (the linter,
analysis passes, future optimizers) one canonical way to walk it instead
of each growing its own ``isinstance`` ladder.

Three entry points:

* :func:`iter_children` — the direct child *nodes* of one node
  (statement-bearing structure only; words and expressions are leaves
  from the walker's point of view and are inspected by the consumer);
* :func:`walk` — pre-order traversal yielding ``(node, parents)`` pairs,
  where ``parents`` is the tuple of enclosing nodes outermost-first;
* :class:`Visitor` — dispatch-by-class visiting (``visit_Try`` etc.)
  with a default :meth:`~Visitor.generic_visit` that recurses.
"""

from __future__ import annotations

from typing import Iterator, Union

from . import ast_nodes as ast

#: Any node the walker can visit.
Node = Union[
    ast.Script,
    ast.Group,
    ast.Command,
    ast.Assignment,
    ast.FailureAtom,
    ast.SuccessAtom,
    ast.FunctionDef,
    ast.Try,
    ast.ForAny,
    ast.ForAll,
    ast.If,
]


def iter_children(node: Node) -> Iterator[Node]:
    """Yield the direct child nodes of ``node`` in source order."""
    if isinstance(node, ast.Script):
        yield node.body
    elif isinstance(node, ast.Group):
        yield from node.body
    elif isinstance(node, ast.Try):
        yield node.body
        if node.catch is not None:
            yield node.catch
    elif isinstance(node, (ast.ForAny, ast.ForAll, ast.FunctionDef)):
        yield node.body
    elif isinstance(node, ast.If):
        yield node.then
        if node.orelse is not None:
            yield node.orelse
    # Command / Assignment / FailureAtom / SuccessAtom are leaves.


def walk(node: Node, parents: tuple[Node, ...] = ()) -> Iterator[tuple[Node, tuple[Node, ...]]]:
    """Pre-order traversal of the subtree rooted at ``node``.

    Yields ``(node, parents)`` where ``parents`` lists the enclosing
    nodes outermost-first (so ``parents[-1]`` is the immediate parent).
    """
    yield node, parents
    child_parents = parents + (node,)
    for child in iter_children(node):
        yield from walk(child, child_parents)


class Visitor:
    """Dispatch-by-class visitor (``visit_<ClassName>`` methods).

    Unhandled node classes fall through to :meth:`generic_visit`, which
    recurses into children — so a subclass only implements the node
    kinds it cares about and still sees the whole tree.
    """

    def visit(self, node: Node) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        else:
            self.generic_visit(node)

    def generic_visit(self, node: Node) -> None:
        for child in iter_children(node):
            self.visit(child)
