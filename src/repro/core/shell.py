"""The user-facing entry point: parse a script and run it under a driver.

::

    from repro import Ftsh

    shell = Ftsh()
    result = shell.run('''
        try for 30 seconds
            sh -c "exit 1"
        catch
            echo giving up
        end
    ''')
    assert result.success

A single :class:`Ftsh` may run many scripts; each run gets a fresh
variable scope seeded from ``variables`` and a fresh log (available on
the returned :class:`RunResult`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from .ast_nodes import Script
from .backoff import BackoffPolicy, PAPER_POLICY
from .compile import compilation_enabled, compile_cached
from .errors import FtshCancelled, FtshFailure, FtshTimeout
from .interpreter import Interpreter
from ..obs.api import NULL_OBS
from .parser import parse, parse_cached
from .realruntime import DEADLINE_ENV, RealDriver
from .shell_log import ShellLog
from .timeline import UNBOUNDED
from .variables import Scope, SpoolPolicy


@dataclass(slots=True)
class RunResult:
    """Outcome of one script execution."""

    success: bool
    reason: Optional[str]
    variables: dict[str, str]
    log: ShellLog
    elapsed: float
    timed_out: bool = False
    cancelled: bool = False

    def __bool__(self) -> bool:
        return self.success


class Ftsh:
    """The fault tolerant shell, bound to a driver.

    Args:
        driver: anything with ``run(generator)``, ``now()`` and the effect
            contract (default: a fresh :class:`RealDriver`).
        policy: backoff schedule for every ``try`` (default: the paper's
            1 s / x2 / 1 h / jitter [1,2) schedule).
        honor_deadline_env: when True (default), a deadline exported by a
            parent ftsh through ``FTSH_DEADLINE_EPOCH`` bounds every run —
            this is how nested shells shut down before their parents kill
            them (paper §4).
        obs: an :class:`~repro.obs.Observability` collecting spans and
            metrics across runs (default: disabled).  The shell installs
            the driver's clock on it, so timestamps are seconds since the
            driver started — the same timebase as the ShellLog.
    """

    def __init__(
        self,
        driver: Optional[Any] = None,
        policy: BackoffPolicy = PAPER_POLICY,
        honor_deadline_env: bool = True,
        spool: Optional[SpoolPolicy] = None,
        log_level: Optional[int] = None,
        obs: Any = None,
        compile: Optional[bool] = None,
    ) -> None:
        self.driver = driver if driver is not None else RealDriver()
        self.policy = policy
        self.honor_deadline_env = honor_deadline_env
        #: Filesystem policy for large variable values (paper §4).
        self.spool = spool
        #: ShellLog verbosity (LOG_RESULTS / LOG_COMMANDS / LOG_TRACE).
        self.log_level = log_level
        #: Telemetry context shared by every run of this shell.
        self.obs = obs if obs is not None else NULL_OBS
        self.obs.set_clock(self.driver.now)
        #: Whether to dispatch over compiled plans (None: honour
        #: ``$REPRO_NO_COMPILE``); ``--no-compile`` sets False.
        self.compile = compilation_enabled(compile)

    # ------------------------------------------------------------------
    @staticmethod
    def parse(text: str, source_name: str = "<script>") -> Script:
        """Parse without running (raises :class:`FtshSyntaxError`)."""
        return parse(text, source_name)

    # ------------------------------------------------------------------
    def run(
        self,
        script: str | Script,
        variables: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> RunResult:
        """Execute ``script`` and report the outcome.

        ``timeout`` bounds the whole run in seconds (on top of any
        inherited ``FTSH_DEADLINE_EPOCH``).
        """
        if isinstance(script, str):
            script = parse_cached(script)
        target: Any = script
        if self.compile and isinstance(script, Script):
            target = compile_cached(script)

        scope = Scope(dict(variables or {}), spool=self.spool)
        if self.log_level is None:
            log = ShellLog(clock=self.driver.now)
        else:
            log = ShellLog(clock=self.driver.now, level=self.log_level)
        interpreter = Interpreter(scope=scope, policy=self.policy, log=log,
                                  obs=self.obs)

        start = self.driver.now()
        deadline = UNBOUNDED if timeout is None else start + timeout
        deadline = min(deadline, self._inherited_deadline(start))

        generator = interpreter.execute(target, overall_deadline=deadline)
        outcome = self.driver.run(generator)
        elapsed = self.driver.now() - start

        if outcome is None:
            return RunResult(True, None, scope.flatten(), log, elapsed)
        if isinstance(outcome, FtshTimeout):
            return RunResult(False, outcome.reason, scope.flatten(), log, elapsed, timed_out=True)
        if isinstance(outcome, FtshCancelled):
            return RunResult(False, outcome.reason, scope.flatten(), log, elapsed, cancelled=True)
        assert isinstance(outcome, FtshFailure)
        return RunResult(False, outcome.reason, scope.flatten(), log, elapsed)

    # ------------------------------------------------------------------
    def _inherited_deadline(self, start: float) -> float:
        """Deadline handed down by a parent ftsh process, in driver time."""
        if not self.honor_deadline_env:
            return UNBOUNDED
        raw = os.environ.get(DEADLINE_ENV)
        if not raw:
            return UNBOUNDED
        try:
            epoch_deadline = float(raw)
        except ValueError:
            return UNBOUNDED
        remaining = epoch_deadline - time.time()
        return start + max(remaining, 0.0)
