"""Evaluation of ``if`` conditions.

Comparators come in two families (following the ftsh technical report):

* numeric — ``.lt. .gt. .le. .ge. .eq. .ne.`` — operands must parse as
  numbers; a non-numeric operand makes the *statement fail* (retryable by
  an enclosing ``try``), it is not a hard error;
* string — ``.eql. .neql.`` — exact text comparison.

A bare operand is truthy when it expands non-empty and is neither ``0``
nor ``false`` (case-insensitive).
"""

from __future__ import annotations

import operator
from typing import Callable

from .ast_nodes import BoolOp, Comparison, Defined, Expr, Not, Truth
from .errors import FtshFailure
from .variables import Scope, expand_word

_NUMERIC: dict[str, Callable[[float, float], bool]] = {
    ".lt.": operator.lt,
    ".gt.": operator.gt,
    ".le.": operator.le,
    ".ge.": operator.ge,
    ".eq.": operator.eq,
    ".ne.": operator.ne,
}

_STRING: dict[str, Callable[[str, str], bool]] = {
    ".eql.": operator.eq,
    ".neql.": operator.ne,
}


def _to_number(text: str, op: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise FtshFailure(f"non-numeric operand {text!r} for {op}") from None


def truthy(text: str) -> bool:
    """ftsh truth of a bare word."""
    return bool(text) and text.lower() not in ("0", "false")


def evaluate(expr: Expr, scope: Scope) -> bool:
    """Evaluate a parsed condition against ``scope``.

    Raises :class:`FtshFailure` on non-numeric operands or undefined
    variables (via expansion) — condition evaluation failure is statement
    failure.
    """
    if isinstance(expr, Comparison):
        lhs = expand_word(expr.lhs, scope)
        rhs = expand_word(expr.rhs, scope)
        if expr.op in _NUMERIC:
            return _NUMERIC[expr.op](_to_number(lhs, expr.op), _to_number(rhs, expr.op))
        return _STRING[expr.op](lhs, rhs)
    if isinstance(expr, Truth):
        return truthy(expand_word(expr.operand, scope))
    if isinstance(expr, Not):
        return not evaluate(expr.operand, scope)
    if isinstance(expr, Defined):
        return expr.name in scope
    if isinstance(expr, BoolOp):
        # ftsh conditions are tiny; both sides always evaluate, keeping
        # failure behaviour (undefined vars, bad numbers) order-independent.
        lhs = evaluate(expr.lhs, scope)
        rhs = evaluate(expr.rhs, scope)
        return (lhs or rhs) if expr.op == ".or." else (lhs and rhs)
    raise TypeError(f"unknown expression node: {expr!r}")  # pragma: no cover
