"""Deadline algebra for nested ``try for`` limits.

A ``try for 30 minutes`` containing a ``try for 5 minutes`` gives the
inner block a deadline of ``min(now + 5min, outer_deadline)`` — the paper:
"The outer time limit of thirty minutes applies regardless of the depth of
nesting."  :class:`DeadlineStack` tracks the active limits; the effective
deadline at any moment is the minimum of the stack.

Deadlines are absolute times in whatever clock the driver uses (wall
seconds for the real runtime, virtual seconds for the simulator); the
algebra itself is clock-agnostic.
"""

from __future__ import annotations

from typing import Iterator

#: Sentinel meaning "no limit".
UNBOUNDED: float = float("inf")


class DeadlineStack:
    """A stack of absolute deadlines whose effective value is the minimum.

    Because an inner ``try`` can never extend an outer limit, pushing
    clips the new deadline to the current effective one, which makes
    :meth:`effective` O(1): the stack is non-increasing from bottom to top.
    """

    __slots__ = ("_stack",)

    def __init__(self) -> None:
        self._stack: list[float] = []

    def push(self, deadline: float) -> float:
        """Push ``deadline`` (absolute; may be ``UNBOUNDED``) and return the
        clipped, now-effective deadline."""
        clipped = min(deadline, self.effective())
        self._stack.append(clipped)
        return clipped

    def pop(self) -> float:
        """Pop and return the most recent deadline."""
        return self._stack.pop()

    def effective(self) -> float:
        """The earliest active deadline, or ``UNBOUNDED`` if none."""
        return self._stack[-1] if self._stack else UNBOUNDED

    def expired(self, now: float) -> bool:
        """True if the effective deadline has passed at time ``now``."""
        return now >= self.effective()

    def remaining(self, now: float) -> float:
        """Seconds until the effective deadline (may be negative or inf)."""
        return self.effective() - now

    def clip(self, duration: float, now: float) -> float:
        """Clip a desired sleep/timeout ``duration`` to the effective
        deadline; never negative."""
        return max(0.0, min(duration, self.remaining(now)))

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self) -> Iterator[float]:
        return iter(self._stack)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeadlineStack({self._stack!r})"


class AttemptBudget:
    """The retry budget of one ``try`` construct.

    A ``try`` may be limited by a time window, an attempt count, or both
    ("``try for 1 hour or 3 times``" — whichever expires first).  The
    budget answers one question: *may another attempt begin?*
    """

    __slots__ = ("deadline", "max_attempts", "attempts")

    def __init__(self, deadline: float = UNBOUNDED, max_attempts: int | None = None) -> None:
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.deadline = deadline
        self.max_attempts = max_attempts
        self.attempts = 0

    def start_attempt(self) -> None:
        """Record that an attempt is beginning."""
        self.attempts += 1

    def may_retry(self, now: float) -> bool:
        """True if another attempt may begin at time ``now``."""
        if self.max_attempts is not None and self.attempts >= self.max_attempts:
            return False
        return now < self.deadline

    def time_exhausted(self, now: float) -> bool:
        """True if the time window (if any) has closed."""
        return now >= self.deadline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AttemptBudget(deadline={self.deadline!r}, "
            f"max_attempts={self.max_attempts!r}, attempts={self.attempts})"
        )
