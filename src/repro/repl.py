"""An interactive read-eval loop for the fault tolerant shell.

::

    $ ftsh -i
    ftsh> x=world
    ok
    ftsh> try 3 times
    ....>     echo hello ${x} -> out
    ....> end
    ok
    ftsh> echo ${out}
    hello world
    ok

State persists across entries: variables, function definitions, and the
execution log (``:log`` shows a summary, ``:analyze`` the post-mortem
digest).  Multi-line constructs are detected lexically — the prompt
continues until every ``try``/``forany``/``forall``/``if``/``function``
has its ``end``.
"""

from __future__ import annotations

import sys
from typing import IO, Any, Optional

from .core.analysis import analyze
from .core.backoff import BackoffPolicy, PAPER_POLICY
from .core.compile import compilation_enabled, compile_script
from .core.errors import FtshSyntaxError
from .core.interpreter import Interpreter
from .core.parser import parse
from .core.realruntime import RealDriver
from .core.shell_log import ShellLog
from .core.timeline import UNBOUNDED
from .core.variables import Scope
from .tokens_depth import block_depth

PROMPT = "ftsh> "
CONTINUATION = "....> "


class Repl:
    """One interactive session; IO injectable for testing."""

    def __init__(
        self,
        driver: Optional[RealDriver] = None,
        policy: BackoffPolicy = PAPER_POLICY,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
        prompt: bool = True,
        lint: bool = True,
        compile: Optional[bool] = None,
    ) -> None:
        self.driver = driver or RealDriver()
        self.policy = policy
        self.stdin = stdin or sys.stdin
        self.stdout = stdout or sys.stdout
        self.prompt = prompt
        self.lint = lint
        #: One dispatch mode for the whole session: the shared function
        #: table holds FunctionPlans when compiling, AST nodes when not.
        self.compile = compilation_enabled(compile)
        self.scope = Scope()
        self.functions: dict = {}
        self.log = ShellLog(clock=self.driver.now)

    # ------------------------------------------------------------------
    def _emit(self, text: str) -> None:
        self.stdout.write(text + "\n")
        self.stdout.flush()

    def _read_entry(self) -> Optional[str]:
        """Read one complete construct (or None at EOF)."""
        lines: list[str] = []
        while True:
            if self.prompt:
                self.stdout.write(PROMPT if not lines else CONTINUATION)
                self.stdout.flush()
            line = self.stdin.readline()
            if line == "":
                return "\n".join(lines) if lines else None
            lines.append(line.rstrip("\n"))
            text = "\n".join(lines)
            try:
                depth = block_depth(text)
            except FtshSyntaxError as exc:
                if "unterminated" in str(exc):
                    # an open quote may legally span lines — keep reading
                    continue
                return text  # hard lexical error: let execute() report it
            if depth <= 0:
                return text

    # ------------------------------------------------------------------
    def execute(self, text: str) -> bool:
        """Run one entry against the persistent state; True on success."""
        try:
            script = parse(text, "<repl>")
        except FtshSyntaxError as exc:
            self._emit(f"syntax error: {exc}")
            return False
        if self.lint:
            self._lint_entry(script, text)
        target: Any = compile_script(script) if self.compile else script
        interpreter = Interpreter(
            scope=self.scope,
            policy=self.policy,
            log=self.log,
            functions=self.functions,
        )
        outcome = self.driver.run(interpreter.execute(target, UNBOUNDED))
        if outcome is None:
            self._emit("ok")
            return True
        self._emit(f"failed: {outcome}")
        return False

    def _lint_entry(self, script, text: str) -> None:
        """Lint-on-load: warn about discipline smells, never block.

        Names already bound in the session (variables and functions) are
        assumed defined so cross-entry references do not cry wolf.
        """
        from .lint.engine import LintConfig, lint_script

        known = set(self.scope.flatten()) | set(self.functions)
        diagnostics = lint_script(
            script, text, source_name="<repl>",
            config=LintConfig(assume_defined=frozenset(known)),
        )
        for diag in diagnostics:
            self._emit(f"lint: {diag.gcc()}")

    def handle_directive(self, line: str) -> bool:
        """``:``-commands; returns False when the session should end."""
        command = line.strip()
        if command in (":q", ":quit", ":exit"):
            return False
        if command == ":log":
            self._emit(self.log.summary())
        elif command == ":analyze":
            self._emit(analyze(self.log).report())
        elif command == ":vars":
            for name, value in sorted(self.scope.flatten().items()):
                self._emit(f"{name}={value!r}")
        elif command == ":help":
            self._emit(":q quit · :vars variables · :log summary · "
                       ":analyze post-mortem")
        else:
            self._emit(f"unknown directive {command!r} (:help)")
        return True

    # ------------------------------------------------------------------
    def run(self) -> int:
        """The loop; returns an exit status."""
        while True:
            entry = self._read_entry()
            if entry is None:
                if self.prompt:
                    self._emit("")
                return 0
            stripped = entry.strip()
            if not stripped:
                continue
            if stripped.startswith(":"):
                if not self.handle_directive(stripped):
                    return 0
                continue
            self.execute(entry)
