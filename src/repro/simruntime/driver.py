"""SimDriver: runs the sans-IO ftsh interpreter in simulated time.

The same effect generator that :class:`~repro.core.realruntime.RealDriver`
executes against POSIX is executed here as a simulation process:

* ``Sleep``       -> virtual :class:`~repro.sim.events.Timeout`
* ``RunCommand``  -> a registered simulated command (its own sim process),
  raced against the effect's deadline
* ``RunParallel`` -> one sim process per branch, first failure interrupts
  the rest
* ``GetTime``     -> ``engine.now``;  ``GetRandom`` -> a named RNG stream

Cancellation flows through :class:`~repro.sim.events.Interrupt`: when the
driving process is interrupted (a losing ``forall`` branch, a scenario
tear-down), the driver throws :class:`FtshCancelled` into the interpreter
at its current yield point, which unwinds like an uncatchable failure.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional

from ..core.effects import (
    CommandResult,
    EffectGenerator,
    GetRandom,
    GetTime,
    ParallelResult,
    RunCommand,
    RunParallel,
    Sleep,
    SleepResult,
)
from ..core.errors import FtshCancelled, FtshControl, FtshRuntimeError
from ..core.timeline import UNBOUNDED
from ..obs.api import NULL_OBS
from ..sim.engine import Engine
from ..sim.events import Interrupt
from ..sim.process import Process
from .registry import CommandContext, CommandRegistry, normalize_result


class SimDriver:
    """Bridges the effect protocol onto a :class:`~repro.sim.Engine`."""

    def __init__(
        self,
        engine: Engine,
        registry: CommandRegistry,
        world: Any = None,
        rng: Optional[random.Random] = None,
        client: str = "",
        max_parallel: Optional[int] = None,
        obs: Any = None,
    ) -> None:
        self.engine = engine
        self.registry = registry
        self.world = world
        # Default to a named stream off the engine's master seed so a
        # driver constructed without an explicit rng is still part of the
        # one-seed-determines-everything contract.
        self.rng = (rng if rng is not None
                    else engine.streams.stream(f"sim-driver-{client or 'anon'}"))
        self.client = client
        #: Cap on simultaneously running ``forall`` branches (paper §4's
        #: process-creation governor).  None = unlimited.
        self.max_parallel = max_parallel
        if max_parallel is not None and max_parallel < 1:
            raise FtshRuntimeError(f"max_parallel must be >= 1, got {max_parallel}")
        #: Telemetry for the simulated runtime layer, mirroring
        #: RealDriver's process-lifecycle counters.
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_spawned = metrics.counter(
            "ftsh_sim_processes_spawned_total", "simulated command processes started")
        self._m_unknown = metrics.counter(
            "ftsh_sim_unknown_commands_total", "commands with no registered handler")
        self._m_branches = metrics.counter(
            "ftsh_sim_branch_processes_total", "forall branch processes started")

    # The interpreter's clock.
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    def spawn(self, generator: EffectGenerator, name: str = "ftsh") -> Process:
        """Run the interpreter as a background simulation process.

        The process' value is ``None`` on script success or the control
        exception on failure — the same contract as ``RealDriver.run``.
        """
        return self.engine.process(self._drive(generator), name=name)

    def run(self, generator: EffectGenerator) -> Optional[BaseException]:
        """Drive to completion, advancing the simulation as needed."""
        process = self.spawn(generator)
        return self.engine.run(until=process)

    # ------------------------------------------------------------------
    def _drive(self, generator: EffectGenerator) -> Generator[Any, Any, Optional[BaseException]]:
        try:
            effect = generator.send(None)
            while True:
                try:
                    result = yield from self._execute(effect)
                except Interrupt as interrupt:
                    effect = generator.throw(FtshCancelled(str(interrupt.cause)))
                    continue
                effect = generator.send(result)
        except StopIteration:
            return None
        except FtshControl as control:
            return control

    def _execute(self, effect: Any) -> Generator[Any, Any, Any]:
        if isinstance(effect, GetTime):
            return self.engine.now
        if isinstance(effect, GetRandom):
            return self.rng.random()
        if isinstance(effect, Sleep):
            return (yield from self._sleep(effect))
        if isinstance(effect, RunCommand):
            return (yield from self._run_command(effect))
        if isinstance(effect, RunParallel):
            return (yield from self._run_parallel(effect))
        raise FtshRuntimeError(f"unknown effect: {effect!r}")
        yield  # pragma: no cover - generator marker

    # ------------------------------------------------------------------
    def _sleep(self, effect: Sleep) -> Generator[Any, Any, SleepResult]:
        start = self.engine.now
        deadline_binds = effect.deadline - start < effect.duration
        limit = min(effect.duration, max(effect.deadline - start, 0.0))
        if limit > 0:
            yield self.engine.timeout(limit)
        return SleepResult(slept=self.engine.now - start, timed_out=deadline_binds)

    # ------------------------------------------------------------------
    def _run_command(self, effect: RunCommand) -> Generator[Any, Any, CommandResult]:
        handler = self.registry.get(effect.argv[0])
        if handler is None:
            self._m_unknown.inc()
            return CommandResult(
                exit_code=127, detail=f"unknown simulated command {effect.argv[0]!r}"
            )
        if effect.stdin_file is not None:
            # The simulated world has no shared filesystem namespace; a
            # script that redirects from a file is a scenario bug, and it
            # fails the way a missing file would.
            return CommandResult(
                exit_code=1,
                detail=f"stdin file {effect.stdin_file!r} not available in simulation",
            )
        remaining = effect.deadline - self.engine.now
        if remaining <= 0:
            return CommandResult(exit_code=-1, timed_out=True, detail="deadline already passed")

        context = CommandContext(
            argv=list(effect.argv),
            engine=self.engine,
            world=self.world,
            stdin_data=effect.stdin_data,
            client=self.client,
        )
        process = self.engine.process(
            self._shield(handler(context), effect.argv[0]),
            name=f"cmd:{effect.argv[0]}",
        )
        self._m_spawned.inc()

        if effect.deadline == UNBOUNDED:
            try:
                value = yield process
            except Interrupt:
                if process.is_alive:
                    process.interrupt("client cancelled")
                raise
            return normalize_result(value, effect.argv[0])
        expiry = self.engine.timeout(remaining)
        try:
            yield self.engine.any_of([process, expiry])
        except Interrupt:
            if process.is_alive:
                process.interrupt("client cancelled")
            raise
        if process.triggered:
            return normalize_result(process.value, effect.argv[0])
        # Deadline won the race: kill the command, wait for its cleanup.
        process.interrupt("deadline expired")
        value = yield process
        result = normalize_result(value, effect.argv[0])
        result.timed_out = True
        if result.exit_code == 0:
            result.exit_code = -1
        return result

    @staticmethod
    def _shield(handler_generator: Generator[Any, Any, Any], name: str) -> Generator[Any, Any, Any]:
        """Backstop: convert an uncaught Interrupt into command death.

        Handlers that hold resources should catch Interrupt themselves to
        release them; this shim only guarantees the *driver* sees a clean
        CommandResult either way.
        """
        try:
            value = yield from handler_generator
            return value
        except Interrupt:
            return CommandResult(exit_code=-1, detail=f"{name}: killed")

    # ------------------------------------------------------------------
    def _run_parallel(self, effect: RunParallel) -> Generator[Any, Any, ParallelResult]:
        total = len(effect.branches)
        limit = self.max_parallel or total
        outcomes: list[Optional[BaseException]] = [None] * total
        index_of: dict[Process, int] = {}
        pending: set[Process] = set()
        next_branch = 0
        cancelling = False

        def start_more() -> None:
            nonlocal next_branch
            while next_branch < total and len(pending) < limit:
                branch = effect.branches[next_branch]
                if cancelling:
                    # Governor + cancellation: unstarted branches are skipped.
                    outcomes[next_branch] = FtshCancelled("forall branch skipped")
                else:
                    process = self.engine.process(
                        self._drive(branch.generator), name=branch.name
                    )
                    self._m_branches.inc()
                    index_of[process] = next_branch
                    pending.add(process)
                next_branch += 1

        start_more()
        while pending:
            try:
                yield self.engine.any_of(list(pending))
            except Interrupt:
                for process in pending:
                    if process.is_alive:
                        process.interrupt("forall cancelled from above")
                raise
            for process in list(pending):
                if not process.triggered:
                    continue
                pending.discard(process)
                outcomes[index_of[process]] = process.value
                if process.value is not None and not cancelling:
                    cancelling = True
                    for other in pending:
                        if other.is_alive:
                            other.interrupt("sibling branch failed")
            start_more()
        return ParallelResult(outcomes=outcomes)
