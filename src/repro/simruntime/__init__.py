"""Binding of the ftsh interpreter to the simulation kernel.

* :class:`SimDriver` — executes interpreter effects in virtual time.
* :class:`CommandRegistry` / :class:`CommandContext` — simulated commands.
* :class:`SimFtsh` — convenience front-end: scripts as sim processes.
"""

from .driver import SimDriver
from .registry import CommandContext, CommandRegistry, normalize_result
from .shell import SimFtsh

__all__ = [
    "CommandContext",
    "CommandRegistry",
    "SimDriver",
    "SimFtsh",
    "normalize_result",
]
