"""SimFtsh: run ftsh scripts as simulation processes.

Each simulated client in the paper's scenarios is one (or a loop of)
ftsh script execution.  :class:`SimFtsh` packages scope/log/interpreter
construction so scenario code stays at the level of the paper's listings::

    shell = SimFtsh(engine, registry, world=world, rng=streams.stream("c1"))
    process = shell.spawn(AL0HA_SUBMIT_SCRIPT)   # a sim Process
    ...
    engine.run(until=horizon)
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Optional

from ..core.ast_nodes import Script
from ..core.backoff import BackoffPolicy, PAPER_POLICY
from ..core.compile import compilation_enabled, compile_cached
from ..core.errors import FtshCancelled, FtshFailure, FtshTimeout
from ..core.interpreter import Interpreter
from ..core.parser import parse_cached
from ..core.shell import RunResult
from ..core.shell_log import ShellLog
from ..obs.api import NULL_OBS
from ..core.timeline import UNBOUNDED
from ..core.variables import Scope
from ..sim.engine import Engine
from ..sim.process import Process
from .driver import SimDriver
from .registry import CommandRegistry


class SimFtsh:
    """A fault tolerant shell whose world is a simulation."""

    def __init__(
        self,
        engine: Engine,
        registry: CommandRegistry,
        world: Any = None,
        rng: Optional[random.Random] = None,
        policy: BackoffPolicy = PAPER_POLICY,
        name: str = "ftsh",
        log: Optional[ShellLog] = None,
        max_parallel: Optional[int] = None,
        obs: Any = None,
        compile: Optional[bool] = None,
    ) -> None:
        self.engine = engine
        self.driver = SimDriver(engine, registry, world=world, rng=rng,
                                client=name, max_parallel=max_parallel,
                                obs=obs)
        self.policy = policy
        self.name = name
        #: Shared across runs so a scenario can count events per client.
        self.log = log if log is not None else ShellLog(clock=lambda: engine.now)
        #: Telemetry context, stamped with the engine's virtual clock.
        self.obs = obs if obs is not None else NULL_OBS
        self.obs.set_clock(lambda: engine.now)
        #: Compiled-plan dispatch (None: honour ``$REPRO_NO_COMPILE``).
        self.compile = compilation_enabled(compile)

    # ------------------------------------------------------------------
    def spawn(
        self,
        script: str | Script,
        variables: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Process:
        """Start the script as a sim process.

        The process' value is a :class:`RunResult` — it never fails, so
        scenario loops can inspect success/failure without try/except.
        """
        if isinstance(script, str):
            script = parse_cached(script)
        target: Any = script
        if self.compile and isinstance(script, Script):
            target = compile_cached(script)
        scope = Scope(dict(variables or {}))
        interpreter = Interpreter(scope=scope, policy=self.policy, log=self.log,
                                  obs=self.obs)
        deadline = UNBOUNDED if timeout is None else self.engine.now + timeout
        generator = interpreter.execute(target, overall_deadline=deadline)
        return self.engine.process(
            self._wrap(generator, scope), name=f"{self.name}:script"
        )

    def run(
        self,
        script: str | Script,
        variables: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> RunResult:
        """Run to completion, advancing the simulation clock as needed."""
        process = self.spawn(script, variables, timeout)
        return self.engine.run(until=process)

    # ------------------------------------------------------------------
    def _wrap(self, generator, scope: Scope):
        start = self.engine.now
        outcome = yield from self.driver._drive(generator)
        elapsed = self.engine.now - start
        if outcome is None:
            return RunResult(True, None, scope.flatten(), self.log, elapsed)
        if isinstance(outcome, FtshTimeout):
            return RunResult(
                False, outcome.reason, scope.flatten(), self.log, elapsed, timed_out=True
            )
        if isinstance(outcome, FtshCancelled):
            return RunResult(
                False, outcome.reason, scope.flatten(), self.log, elapsed, cancelled=True
            )
        assert isinstance(outcome, FtshFailure)
        return RunResult(False, outcome.reason, scope.flatten(), self.log, elapsed)
