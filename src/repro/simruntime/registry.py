"""Simulated commands: the things ftsh scripts invoke inside the simulator.

A *simulated command* is a generator function (a simulation process body)
registered under a command name.  When an ftsh script run by the
:class:`~repro.simruntime.driver.SimDriver` executes ``condor_submit
job``, the driver looks up ``condor_submit`` here and runs the handler in
virtual time.

Handler contract::

    @registry.register("mycmd")
    def mycmd(ctx: CommandContext):
        yield ctx.engine.timeout(1.5)        # take simulated time
        return 0                              # exit code
        # or: return (0, "output text")
        # or: return CommandResult(...)

* Handlers hold simulated resources; if they can be interrupted while
  holding them (deadline expiry, forall cancellation), they must catch
  :class:`~repro.sim.Interrupt`, release, and return.  An uncaught
  Interrupt is converted by the driver into command death (nonzero,
  timed out) — resources held through it leak, exactly like a real
  process killed with SIGKILL would leak disk files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..core.effects import CommandResult
from ..core.errors import FtshRuntimeError
from ..sim.engine import Engine

#: What a handler may return.
HandlerReturn = CommandResult | int | tuple[int, str] | None
CommandHandler = Callable[["CommandContext"], Generator[Any, Any, HandlerReturn]]


@dataclass(slots=True)
class CommandContext:
    """Everything a simulated command can see."""

    argv: list[str]
    engine: Engine
    world: Any
    stdin_data: Optional[str] = None
    #: The shell (client) name that invoked the command, for per-client
    #: random streams and metrics.
    client: str = ""

    @property
    def name(self) -> str:
        return self.argv[0]

    @property
    def args(self) -> list[str]:
        return self.argv[1:]


def normalize_result(value: HandlerReturn, command: str) -> CommandResult:
    """Coerce a handler's return value into a :class:`CommandResult`."""
    if value is None:
        return CommandResult(exit_code=0)
    if isinstance(value, CommandResult):
        return value
    if isinstance(value, int):
        return CommandResult(exit_code=value)
    if isinstance(value, tuple) and len(value) == 2:
        code, output = value
        return CommandResult(exit_code=int(code), output=str(output))
    raise FtshRuntimeError(
        f"simulated command {command!r} returned {value!r}; expected "
        "None, int, (int, str) or CommandResult"
    )


class CommandRegistry:
    """Name -> handler mapping, with a few built-in shell-like commands."""

    def __init__(self, include_builtins: bool = True) -> None:
        self._handlers: dict[str, CommandHandler] = {}
        if include_builtins:
            register_builtins(self)

    def register(self, name: str) -> Callable[[CommandHandler], CommandHandler]:
        """Decorator: ``@registry.register("wget")``."""

        def decorate(handler: CommandHandler) -> CommandHandler:
            self._handlers[name] = handler
            return handler

        return decorate

    def add(self, name: str, handler: CommandHandler) -> None:
        self._handlers[name] = handler

    def get(self, name: str) -> Optional[CommandHandler]:
        return self._handlers.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> list[str]:
        return sorted(self._handlers)


def register_builtins(registry: CommandRegistry) -> None:
    """Tiny POSIX-ish builtins so scripts read naturally in simulation."""

    @registry.register("echo")
    def echo(ctx: CommandContext):
        return 0, " ".join(ctx.args) + "\n"
        yield  # pragma: no cover - generator marker

    @registry.register("true")
    def true(ctx: CommandContext):
        return 0
        yield  # pragma: no cover

    @registry.register("false")
    def false(ctx: CommandContext):
        return 1
        yield  # pragma: no cover

    @registry.register("cat")
    def cat(ctx: CommandContext):
        return 0, ctx.stdin_data or ""
        yield  # pragma: no cover

    @registry.register("sleep")
    def sleep(ctx: CommandContext):
        duration = float(ctx.args[0]) if ctx.args else 0.0
        yield ctx.engine.timeout(duration)
        return 0
