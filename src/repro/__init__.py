"""repro — a reproduction of *The Ethernet Approach to Grid Computing*
(Thain & Livny, HPDC 2003).

Layers:

* :mod:`repro.core` — **ftsh**, the fault tolerant shell: language,
  sans-IO interpreter, backoff, real POSIX runtime.
* :mod:`repro.sim` — a discrete-event simulation kernel.
* :mod:`repro.simruntime` — runs ftsh scripts in virtual time against
  simulated commands.
* :mod:`repro.grid` — the contended substrates of the paper's three
  scenarios (schedd + FD table, shared buffer, replicated servers).
* :mod:`repro.clients` — the Fixed / Aloha / Ethernet disciplines and
  the paper's scenario scripts.
* :mod:`repro.experiments` — harnesses regenerating Figures 1-7.

Quick start::

    from repro import Ftsh
    result = Ftsh().run("try for 10 seconds \n  echo hello \n end")
    assert result.success
"""

from .core import (
    BackoffPolicy,
    BackoffState,
    Ftsh,
    FtshError,
    FtshFailure,
    FtshSyntaxError,
    FtshTimeout,
    NO_BACKOFF,
    PAPER_POLICY,
    RealDriver,
    RunResult,
    ShellLog,
    parse,
)
from .simruntime import CommandRegistry, SimDriver, SimFtsh

__version__ = "1.0.0"

__all__ = [
    "BackoffPolicy",
    "BackoffState",
    "CommandRegistry",
    "Ftsh",
    "FtshError",
    "FtshFailure",
    "FtshSyntaxError",
    "FtshTimeout",
    "NO_BACKOFF",
    "PAPER_POLICY",
    "RealDriver",
    "RunResult",
    "ShellLog",
    "SimDriver",
    "SimFtsh",
    "parse",
    "__version__",
]
