"""repro — a reproduction of *The Ethernet Approach to Grid Computing*
(Thain & Livny, HPDC 2003).

Layers:

* :mod:`repro.core` — **ftsh**, the fault tolerant shell: language,
  sans-IO interpreter, backoff, real POSIX runtime.
* :mod:`repro.sim` — a discrete-event simulation kernel.
* :mod:`repro.simruntime` — runs ftsh scripts in virtual time against
  simulated commands.
* :mod:`repro.grid` — the contended substrates of the paper's three
  scenarios (schedd + FD table, shared buffer, replicated servers).
* :mod:`repro.clients` — the Fixed / Aloha / Ethernet disciplines and
  the paper's scenario scripts.
* :mod:`repro.experiments` — harnesses regenerating Figures 1-7.

Quick start::

    from repro import Ftsh
    result = Ftsh().run("try for 10 seconds \n  echo hello \n end")
    assert result.success
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static import surface
    from .core import (
        BackoffPolicy,
        BackoffState,
        Ftsh,
        FtshError,
        FtshFailure,
        FtshSyntaxError,
        FtshTimeout,
        NO_BACKOFF,
        PAPER_POLICY,
        RealDriver,
        RunResult,
        ShellLog,
        parse,
    )
    from .simruntime import CommandRegistry, SimDriver, SimFtsh

__version__ = "1.0.0"

#: Public name -> home submodule, resolved lazily (PEP 562).  Importing
#: ``repro`` used to pull the whole interpreter + sim stack (~140 ms);
#: subprocess workers and thin clients (``repro.dist.worker``,
#: ``repro.service.client``) import only what they touch, which is a
#: real share of their startup bill on 1-CPU fleets.
_EXPORTS = {
    "BackoffPolicy": "core",
    "BackoffState": "core",
    "Ftsh": "core",
    "FtshError": "core",
    "FtshFailure": "core",
    "FtshSyntaxError": "core",
    "FtshTimeout": "core",
    "NO_BACKOFF": "core",
    "PAPER_POLICY": "core",
    "RealDriver": "core",
    "RunResult": "core",
    "ShellLog": "core",
    "parse": "core",
    "CommandRegistry": "simruntime",
    "SimDriver": "simruntime",
    "SimFtsh": "simruntime",
}


def __getattr__(name: str):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(f".{home}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "BackoffPolicy",
    "BackoffState",
    "CommandRegistry",
    "Ftsh",
    "FtshError",
    "FtshFailure",
    "FtshSyntaxError",
    "FtshTimeout",
    "NO_BACKOFF",
    "PAPER_POLICY",
    "RealDriver",
    "RunResult",
    "ShellLog",
    "SimDriver",
    "SimFtsh",
    "parse",
    "__version__",
]
