"""``repro.lint`` — static analysis for ftsh scripts.

The paper's premise (§3–§4) is that failure discipline lives *in the
script*: an unbounded ``try`` livelocks, a zero-backoff loop melts the
shared resource, a missing carrier-sense probe regresses Ethernet to
Aloha.  This package rejects those anti-patterns before a single real or
simulated process is spawned — the pre-flight counterpart to the
post-mortem digests in :mod:`repro.core.analysis`.

Public surface:

* :func:`lint_text` / :func:`lint_file` / :func:`lint_script` — run the
  rule pack, get back sorted :class:`Diagnostic` objects;
* :class:`LintConfig` — ``-W error`` promotion, rule selection, and
  externally-defined variable names;
* :data:`RULES` — the catalogue, code -> rule class (see docs/LINT.md);
* ``python -m repro.lint`` / ``ftsh --lint`` — the CLI front ends.

Suppression: ``# lint: disable=FTL001`` on the offending line,
``# lint: disable-file=FTL010`` for a whole file.
"""

from .diagnostics import (
    Diagnostic,
    Severity,
    diagnostics_to_json,
    promote_warnings,
    sort_diagnostics,
    worst_severity,
)
from .engine import (
    LintConfig,
    Rule,
    has_errors,
    lint_file,
    lint_script,
    lint_text,
)
from .rules import RULES, default_rules
from .suppress import SuppressionMap

__all__ = [
    "Diagnostic",
    "LintConfig",
    "RULES",
    "Rule",
    "Severity",
    "SuppressionMap",
    "default_rules",
    "diagnostics_to_json",
    "has_errors",
    "lint_file",
    "lint_script",
    "lint_text",
    "promote_warnings",
    "sort_diagnostics",
    "worst_severity",
]
