"""The initial rule pack: ten checks grounded in the paper's discipline.

Every rule encodes one way a script can defeat the Ethernet approach —
an unbounded ``try`` livelocks on persistent failure (§3), a zero-backoff
retry loop is the "Fixed" client that melts the shared resource (§5,
Figures 2–6), a missing carrier-sense probe gives up the collision
avoidance that separates Ethernet from Aloha (§5).  The scope-aware
checks (FTL005–FTL007) run a small abstract interpretation over the
script: a chain-of-maps environment mirroring
:class:`repro.core.variables.Scope`, with constant folding for literal
assignments.
"""

from __future__ import annotations

from typing import Optional

from ..core import ast_nodes as ast
from ..core.tokens import Literal, VarRef, Word
from ..core.units import DAY, format_duration
from ..core.visitor import walk
from .engine import LintContext, Rule
from .diagnostics import Severity

# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

#: Value marker: bound, but to something we cannot fold to a constant.
_UNKNOWN = object()

#: Commands that acquire a shared grid resource in the paper's scenarios.
_ACQUIRE_COMMANDS = frozenset({"condor_submit", "store_output", "store_reserved"})

#: Commands that *sense* load before acquiring (the Ethernet probes),
#: including the reservation RPC the §5 discussion weighs as an
#: alternative to carrier sense.
_PROBE_COMMANDS = frozenset({"cut", "df_estimate", "reserve_output"})


def command_name(node: ast.Command) -> Optional[str]:
    """The command's first word, when it is a plain literal."""
    return node.words[0].literal_text() if node.words else None


def _word_text(word: Word) -> str:
    """Source-ish rendering of a word (``${x}`` for references)."""
    return str(word)


def _is_probe_command(node: ast.Command) -> bool:
    name = command_name(node)
    if name in _PROBE_COMMANDS:
        return True
    if any(r.to_variable and not r.is_input for r in node.redirects):
        return True  # captures output for a later test: a sensing idiom
    if name == "wget" and any(
        _word_text(w).endswith("/flag") for w in node.words[1:]
    ):
        return True
    return False


def _is_acquire_command(node: ast.Command) -> bool:
    name = command_name(node)
    if name in _ACQUIRE_COMMANDS:
        return True
    return name == "wget" and any(
        _word_text(w).endswith("/data") for w in node.words[1:]
    )


def _contains_probe(node: object) -> bool:
    """Does this statement (recursively) contain a carrier-sense probe?"""
    for inner, _parents in walk(node):  # type: ignore[arg-type]
        if isinstance(inner, ast.Command) and _is_probe_command(inner):
            return True
    return False


class _Env:
    """Chain-of-maps abstract scope: name -> constant str or _UNKNOWN."""

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.bindings: dict[str, object] = {}
        self.parent = parent

    def bind(self, name: str, value: object = _UNKNOWN) -> None:
        self.bindings[name] = value

    def lookup(self, name: str) -> Optional[object]:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return None

    def is_defined(self, name: str) -> bool:
        # Positionals ($1, $#) come from function calls or the harness.
        return name.isdigit() or name == "#" or self.lookup(name) is not None

    def fold(self, word: Word) -> object:
        """Constant-fold a word; _UNKNOWN when any part is not static."""
        chunks: list[str] = []
        for part in word.parts:
            if isinstance(part, VarRef):
                value = self.lookup(part.name)
                if not isinstance(value, str):
                    return _UNKNOWN
                chunks.append(value)
            else:
                chunks.append(part.text)
        return "".join(chunks)


class _DataflowWalker:
    """Statement-order walk tracking bindings; rules override the hooks.

    Deliberately lenient: a binding on *any* path counts as a binding
    (``if``/``catch`` joins union their branches), function bodies only
    report names bound nowhere in the whole script, and names listed in
    ``assume_defined`` (CLI ``-D``, REPL session state) never fire.
    Lint findings should survive triage — a missed warning is cheaper
    than a false one.
    """

    def __init__(self, assume_defined: frozenset[str] = frozenset()) -> None:
        self.env = _Env()
        for name in assume_defined:
            self.env.bind(name)
        self.in_function = 0
        self.script_bound: frozenset[str] = frozenset()

    # -- hooks -----------------------------------------------------------
    def on_use_undefined(self, name: str, word: Word, node: object) -> None:
        pass

    def on_shadow(self, var: str, node: object, construct: str) -> None:
        pass

    def on_empty_loop(self, node: object) -> None:
        pass

    # -- driving ---------------------------------------------------------
    def run(self, script: ast.Script) -> None:
        self.script_bound = _all_bound_names(script)
        self._walk_group(script.body)

    def _use(self, word: Word, node: object) -> None:
        for part in word.parts:
            if not isinstance(part, VarRef):
                continue
            if self.env.is_defined(part.name):
                continue
            if self.in_function and part.name in self.script_bound:
                continue  # bound somewhere; calls may come after that
            self.on_use_undefined(part.name, word, node)

    def _walk_group(self, group: ast.Group) -> None:
        for stmt in group.body:
            self._walk_statement(stmt)

    def _walk_statement(self, node: ast.Statement) -> None:
        if isinstance(node, ast.Command):
            for word in node.words:
                self._use(word, node)
            for redirect in node.redirects:
                if redirect.to_variable:
                    name = redirect.target.literal_text() or ""
                    if redirect.is_input:
                        if not self.env.is_defined(name) and not (
                            self.in_function and name in self.script_bound
                        ):
                            self.on_use_undefined(name, redirect.target, node)
                    else:
                        self.env.bind(name)
                else:
                    self._use(redirect.target, node)
        elif isinstance(node, ast.Assignment):
            self._use(node.value, node)
            self.env.bind(node.name, self.env.fold(node.value))
        elif isinstance(node, ast.Try):
            self._walk_group(node.body)
            if node.catch is not None:
                self._walk_group(node.catch)
        elif isinstance(node, ast.ForAny):
            self._walk_loop(node, child_scope=False)
        elif isinstance(node, ast.ForAll):
            self._walk_loop(node, child_scope=True)
        elif isinstance(node, ast.If):
            self._walk_if(node)
        elif isinstance(node, ast.FunctionDef):
            outer, self.env = self.env, _Env(parent=self.env)
            self.in_function += 1
            try:
                self._walk_group(node.body)
            finally:
                self.in_function -= 1
                self.env = outer
        # FailureAtom / SuccessAtom: no dataflow.

    def _walk_loop(self, node: ast.ForAny | ast.ForAll, *,
                   child_scope: bool) -> None:
        for word in node.values:
            self._use(word, node)
        if self.env.lookup(node.var) is not None:
            construct = "forall" if child_scope else "forany"
            self.on_shadow(node.var, node, construct)
        folded = [self.env.fold(word) for word in node.values]
        if all(value == "" for value in folded):
            self.on_empty_loop(node)
        if child_scope:
            # forall: branch scopes — writes do not escape (variables.py).
            outer, self.env = self.env, _Env(parent=self.env)
            self.env.bind(node.var)
            try:
                self._walk_group(node.body)
            finally:
                self.env = outer
        else:
            # forany: the loop variable (and body writes) persist; the
            # winner's value sticks, so the constant is unknowable.
            self.env.bind(node.var)
            self._walk_group(node.body)

    def _walk_if(self, node: ast.If) -> None:
        for word in _condition_words(node.condition):
            self._use(word, node)
        # `.defined. x` guards make x safe to use in the branches below;
        # joins are lenient (either branch's bindings count afterwards).
        for name in _defined_guards(node.condition):
            self.env.bind(name)
        self._walk_group(node.then)
        if node.orelse is not None:
            self._walk_group(node.orelse)


def _condition_words(expr: ast.Expr) -> list[Word]:
    """Every word an expression expands (Defined tests expand nothing)."""
    if isinstance(expr, ast.Comparison):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.Truth):
        return [expr.operand]
    if isinstance(expr, ast.Not):
        return _condition_words(expr.operand)
    if isinstance(expr, ast.BoolOp):
        return _condition_words(expr.lhs) + _condition_words(expr.rhs)
    return []  # Defined


def _defined_guards(expr: ast.Expr) -> list[str]:
    """Names positively guarded by ``.defined.`` in this condition."""
    if isinstance(expr, ast.Defined):
        return [expr.name]
    if isinstance(expr, ast.BoolOp) and expr.op == ".and.":
        return _defined_guards(expr.lhs) + _defined_guards(expr.rhs)
    return []


def _all_bound_names(script: ast.Script) -> frozenset[str]:
    """Every name the script binds anywhere, ignoring order and scope."""
    bound: set[str] = set()
    for node, _parents in walk(script):
        if isinstance(node, ast.Assignment):
            bound.add(node.name)
        elif isinstance(node, (ast.ForAny, ast.ForAll)):
            bound.add(node.var)
        elif isinstance(node, ast.Command):
            for redirect in node.redirects:
                if redirect.to_variable and not redirect.is_input:
                    name = redirect.target.literal_text()
                    if name:
                        bound.add(name)
    return frozenset(bound)


# ---------------------------------------------------------------------------
# the rules
# ---------------------------------------------------------------------------

class UnboundedTry(Rule):
    code = "FTL001"
    name = "unbounded-try"
    severity = Severity.WARNING
    summary = "a 'try' with no time and no attempt bound livelocks on persistent failure"
    paper = "§3"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, _parents in walk(script):
            if not isinstance(node, ast.Try):
                continue
            limits = node.limits
            if limits.duration is None and limits.attempts is None:
                detail = (
                    f" (a fixed 'every {format_duration(limits.every)}' "
                    "interval is not a bound)"
                    if limits.every is not None else ""
                )
                self.report(
                    ctx, node,
                    f"'try' has no time or attempt bound{detail}; it can "
                    "retry forever against a persistent failure",
                    suggestion="bound it: 'try for <time>' or 'try <n> times'",
                )


class ZeroBackoff(Rule):
    code = "FTL002"
    name = "zero-backoff"
    severity = Severity.WARNING
    summary = "a retry loop with zero backoff is the 'Fixed' client that melts the shared resource"
    paper = "§5, Figures 2–6"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, _parents in walk(script):
            if isinstance(node, ast.Try) and node.limits.every == 0:
                self.report(
                    ctx, node,
                    "'try … every 0' retries with no delay — the paper's "
                    "'Fixed' client, which collapses the shared resource "
                    "under load",
                    suggestion="drop 'every 0 <unit>' to restore exponential "
                    "backoff, or choose a positive interval",
                )


class UnreachableCode(Rule):
    code = "FTL003"
    name = "unreachable-code"
    severity = Severity.WARNING
    summary = "statements after an unconditional 'failure' (or 'exit') never run"
    paper = "§4"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, _parents in walk(script):
            if not isinstance(node, ast.Group):
                continue
            for stmt, following in zip(node.body, node.body[1:]):
                if isinstance(stmt, ast.FailureAtom):
                    terminator = "'failure'"
                elif (isinstance(stmt, ast.Command)
                      and command_name(stmt) == "exit"):
                    terminator = "'exit'"
                else:
                    continue
                self.report(
                    ctx, following,
                    f"unreachable: {terminator} on line {stmt.line} always "
                    "aborts this sequence first",
                    suggestion="delete the dead statements or move them "
                    f"before the {terminator}",
                )
                break  # one finding per group is enough


def _infallible(group: ast.Group) -> bool:
    """Can this body *provably* never fail?  (Conservative: literal
    assignments and ``success`` atoms are the only infallible statements —
    expanding a variable can fail, so any VarRef disqualifies.)"""
    for stmt in group.body:
        if isinstance(stmt, ast.SuccessAtom):
            continue
        if (isinstance(stmt, ast.Assignment)
                and stmt.value.literal_text() is not None):
            continue
        return False
    return True


class DeadCatch(Rule):
    code = "FTL004"
    name = "dead-catch"
    severity = Severity.WARNING
    summary = "a 'catch' only fires when the try exhausts its budget; some never can"
    paper = "§4"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, _parents in walk(script):
            if not isinstance(node, ast.Try) or node.catch is None:
                continue
            limits = node.limits
            if limits.duration is None and limits.attempts is None:
                self.report(
                    ctx, node,
                    "'catch' can never fire: an unbounded 'try' never "
                    "exhausts its budget, so failures retry instead of "
                    "reaching the handler",
                    suggestion="bound the try, or drop the catch",
                )
            elif _infallible(node.body):
                self.report(
                    ctx, node,
                    "'catch' can never fire: the try body cannot fail "
                    "(only literal assignments and 'success')",
                    suggestion="drop the catch, or the whole try",
                )


class UndefinedVariable(Rule):
    code = "FTL005"
    name = "undefined-variable"
    severity = Severity.WARNING
    summary = "expanding an unbound variable fails the enclosing procedure"
    paper = "§4"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        rule = self
        seen: set[tuple[str, int, int]] = set()

        class Walker(_DataflowWalker):
            def on_use_undefined(self, name: str, word: Word, node: object) -> None:
                key = (name, getattr(word, "line", 0), getattr(word, "column", 0))
                if key in seen:
                    return
                seen.add(key)
                rule.report(
                    ctx, word,
                    f"variable '{name}' is never assigned before this use; "
                    "expanding it will fail the enclosing procedure",
                    suggestion=f"assign {name}=… first, capture into it with "
                    f"'-> {name}', or guard with '.defined. {name}'",
                )

        Walker(assume_defined=ctx.config.assume_defined).run(script)


class ShadowedVariable(Rule):
    code = "FTL006"
    name = "shadowed-variable"
    severity = Severity.WARNING
    summary = "a loop variable reusing a live name hides (or clobbers) the outer binding"
    paper = "§4"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        rule = self

        class Walker(_DataflowWalker):
            def on_shadow(self, var: str, node: object, construct: str) -> None:
                if construct == "forall":
                    detail = ("each branch shadows the outer value for its "
                              "own scope")
                else:
                    detail = ("the loop overwrites it, and the winning "
                              "alternative's value sticks afterwards")
                rule.report(
                    ctx, node,
                    f"{construct} variable '{var}' reuses an already-bound "
                    f"name; {detail}",
                    suggestion=f"rename the loop variable '{var}'",
                )

        Walker(assume_defined=ctx.config.assume_defined).run(script)


class EmptyLoopList(Rule):
    code = "FTL007"
    name = "empty-loop-list"
    severity = Severity.WARNING
    summary = "alternation over provably empty alternatives decides nothing"
    paper = "§4"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        rule = self

        class Walker(_DataflowWalker):
            def on_empty_loop(self, node: object) -> None:
                construct = ("forany" if isinstance(node, ast.ForAny)
                             else "forall")
                rule.report(
                    ctx, node,
                    f"every alternative of this {construct} is provably the "
                    "empty string; the loop has nothing real to choose from",
                    suggestion="fill in the alternative list (or the "
                    "variable it expands from)",
                )

        Walker(assume_defined=ctx.config.assume_defined).run(script)


class NestedBudgetExceeded(Rule):
    code = "FTL008"
    name = "nested-budget"
    severity = Severity.WARNING
    summary = "an inner try window longer than the enclosing budget is wishful thinking"
    paper = "§4"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, parents in walk(script):
            if not isinstance(node, ast.Try) or node.limits.duration is None:
                continue
            enclosing = [
                p.limits.duration for p in parents
                if isinstance(p, ast.Try) and p.limits.duration is not None
            ]
            if not enclosing:
                continue
            budget = min(enclosing)
            if node.limits.duration > budget:
                self.report(
                    ctx, node,
                    f"inner window of {format_duration(node.limits.duration)} "
                    f"exceeds the enclosing try's "
                    f"{format_duration(budget)} budget; the outer deadline "
                    "always cuts it short",
                    suggestion="shrink the inner window below "
                    f"{format_duration(budget)} or grow the outer one",
                )


class SuspiciousTimeLiteral(Rule):
    code = "FTL009"
    name = "suspicious-time"
    severity = Severity.WARNING
    summary = "time literals that cannot mean what they say"
    paper = "§2"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, _parents in walk(script):
            if not isinstance(node, ast.Try):
                continue
            limits = node.limits
            if limits.duration == 0:
                self.report(
                    ctx, node,
                    "zero-length time window: 'try for 0' expires before "
                    "the first attempt can fail and retry",
                    suggestion="write the window you mean, e.g. "
                    "'try for 5 seconds'",
                )
            if (limits.every is not None and limits.duration is not None
                    and limits.every > 0
                    and limits.every >= limits.duration):
                self.report(
                    ctx, node,
                    f"retry interval ({format_duration(limits.every)}) is "
                    f"not smaller than the window "
                    f"({format_duration(limits.duration)}); at most one "
                    "attempt ever runs",
                    suggestion="shrink 'every' well below the 'for' window",
                )
            if (limits.duration is not None and limits.duration >= DAY
                    and limits.duration_unit
                    and limits.duration_unit.lower().startswith("s")):
                self.report(
                    ctx, node,
                    f"window of {limits.duration:g} seconds "
                    f"(= {format_duration(limits.duration)}) written in "
                    "seconds; a larger unit would say what is meant",
                    suggestion=f"write 'try for {format_duration(limits.duration)}'"
                    " using hours/days",
                )


class MissingCarrierSense(Rule):
    code = "FTL010"
    name = "missing-carrier-sense"
    severity = Severity.WARNING
    summary = "acquiring a shared resource in a retry loop without sensing load first"
    paper = "§5"

    def check(self, script: ast.Script, ctx: LintContext) -> None:
        for node, parents in walk(script):
            if isinstance(node, ast.Try):
                self._check_try(node, parents, ctx)

    def _check_try(self, try_node: ast.Try,
                   parents: tuple, ctx: LintContext) -> None:
        probed = False
        parent = parents[-1] if parents else None
        if isinstance(parent, ast.Group):
            for sibling in parent.body:
                if sibling is try_node:
                    break
                if _contains_probe(sibling):
                    probed = True
        self._scan(try_node.body, probed, ctx)

    def _scan(self, group: ast.Group, probed: bool, ctx: LintContext) -> bool:
        """Scan one group in order; returns whether a probe has happened
        by the end.  Nested ``try`` blocks are scanned on their own visit
        (with their preceding siblings as context), so here they only
        contribute their probes."""
        for stmt in group.body:
            if isinstance(stmt, ast.Command):
                if _is_probe_command(stmt):
                    probed = True
                elif _is_acquire_command(stmt) and not probed:
                    self.report(
                        ctx, stmt,
                        f"'{command_name(stmt)}' grabs a shared resource "
                        "inside a retry loop with no carrier-sense probe "
                        "before it — Aloha behaviour under load",
                        suggestion="probe first (capture a load measure and "
                        "'failure' when busy), as in the paper's Ethernet "
                        "scripts",
                    )
            elif isinstance(stmt, ast.If):
                probed_then = self._scan(stmt.then, probed, ctx)
                probed_else = (self._scan(stmt.orelse, probed, ctx)
                               if stmt.orelse is not None else probed)
                probed = probed_then or probed_else
            elif isinstance(stmt, (ast.ForAny, ast.ForAll, ast.FunctionDef)):
                probed = self._scan(stmt.body, probed, ctx)
            elif isinstance(stmt, ast.Try):
                if _contains_probe(stmt):
                    probed = True
        return probed


def default_rules() -> list[Rule]:
    """One instance of every rule in the pack, in code order."""
    return [
        UnboundedTry(),
        ZeroBackoff(),
        UnreachableCode(),
        DeadCatch(),
        UndefinedVariable(),
        ShadowedVariable(),
        EmptyLoopList(),
        NestedBudgetExceeded(),
        SuspiciousTimeLiteral(),
        MissingCarrierSense(),
    ]


#: Code -> rule class, for documentation and ``--select`` validation.
RULES: dict[str, type[Rule]] = {
    cls.code: cls
    for cls in (
        UnboundedTry, ZeroBackoff, UnreachableCode, DeadCatch,
        UndefinedVariable, ShadowedVariable, EmptyLoopList,
        NestedBudgetExceeded, SuspiciousTimeLiteral, MissingCarrierSense,
    )
}
