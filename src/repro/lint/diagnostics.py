"""Structured lint diagnostics and their renderings.

A :class:`Diagnostic` is one finding: a stable ``FTL###`` code, a
severity, a source span, a message, and (where the rule can offer one) a
suggested fix.  Two renderings are supported:

* GCC style, one finding per line, for humans and editors::

      script.ftsh:3:1: warning: 'try' has no time or attempt bound [FTL001]

* JSON, for CI gates and tooling (see :func:`diagnostics_to_json`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding, anchored to a source span."""

    code: str                   #: stable rule code, e.g. ``"FTL001"``
    severity: Severity
    message: str
    source: str = "<script>"    #: file name (or ``<script>`` for text input)
    line: int = 0               #: 1-based; 0 = whole file
    column: int = 0             #: 1-based; 0 = whole line
    suggestion: Optional[str] = None   #: suggested fix, free text
    rule: str = ""              #: short rule name, e.g. ``"unbounded-try"``
    paper: str = ""             #: paper section the rule is grounded in
    extra: tuple[tuple[str, object], ...] = field(default=())

    def gcc(self) -> str:
        """Render GCC-style: ``file:line:col: severity: message [CODE]``."""
        where = self.source
        if self.line:
            where += f":{self.line}"
            if self.column:
                where += f":{self.column}"
        return f"{where}: {self.severity.label}: {self.message} [{self.code}]"

    def to_dict(self) -> dict:
        """A JSON-ready mapping with a stable key order."""
        out: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "column": self.column,
        }
        if self.rule:
            out["rule"] = self.rule
        if self.paper:
            out["paper"] = self.paper
        if self.suggestion:
            out["suggestion"] = self.suggestion
        for key, value in self.extra:
            out[key] = value
        return out


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Stable presentation order: position first, then code."""
    return sorted(diagnostics,
                  key=lambda d: (d.source, d.line, d.column, d.code))


def promote_warnings(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Apply ``-W error``: every warning becomes an error (info stays)."""
    return [
        replace(d, severity=Severity.ERROR)
        if d.severity is Severity.WARNING else d
        for d in diagnostics
    ]


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for a clean result."""
    worst: Optional[Severity] = None
    for diag in diagnostics:
        if worst is None or diag.severity > worst:
            worst = diag.severity
    return worst


def diagnostics_to_json(per_file: dict[str, list[Diagnostic]], *,
                        indent: int = 2) -> str:
    """Render the machine-readable report for a set of linted files."""
    files = []
    totals = {"error": 0, "warning": 0, "info": 0}
    for path in sorted(per_file):
        diags = sort_diagnostics(per_file[path])
        for diag in diags:
            totals[diag.severity.label] += 1
        files.append({
            "path": path,
            "diagnostics": [d.to_dict() for d in diags],
        })
    document = {
        "version": 1,
        "tool": "repro.lint",
        "files": files,
        "summary": {
            "files": len(files),
            "errors": totals["error"],
            "warnings": totals["warning"],
            "info": totals["info"],
        },
    }
    return json.dumps(document, indent=indent, sort_keys=False)
