"""The lint engine: run a rule pack over a parsed script.

The engine owns everything that is *not* a rule: parsing, the rule
registry, suppression comments, ``-W error`` promotion, and ordering.
Rules (:mod:`repro.lint.rules`) are small objects with a stable code, a
default severity, and a ``check`` method that walks the frozen AST
(:mod:`repro.core.visitor`) and reports findings through the shared
:class:`LintContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..core import ast_nodes as ast
from ..core.parser import parse
from .diagnostics import (
    Diagnostic,
    Severity,
    promote_warnings,
    sort_diagnostics,
)
from .suppress import SuppressionMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    pass


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Options shared by every front end (CLI, ``ftsh --lint``, REPL).

    ``assume_defined`` lists variable names bound *outside* the script —
    ``-D`` presets on the command line, the persistent scope of a REPL
    session — so the dataflow rules do not cry wolf about them.
    """

    warn_as_error: bool = False
    disable: frozenset[str] = frozenset()
    select: Optional[frozenset[str]] = None
    assume_defined: frozenset[str] = frozenset()


class Rule:
    """Base class for one lint check.

    Subclasses set the class attributes and implement :meth:`check`,
    reporting findings with :meth:`report`.
    """

    code: str = "FTL000"
    name: str = "unnamed"
    severity: Severity = Severity.WARNING
    summary: str = ""
    paper: str = ""  #: paper section grounding the rule, e.g. "§3"

    def check(self, script: ast.Script, ctx: "LintContext") -> None:
        raise NotImplementedError

    def report(
        self,
        ctx: "LintContext",
        node: object,
        message: str,
        *,
        suggestion: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> None:
        """Emit one finding anchored at ``node`` (any object with a
        ``line``/``column``, a :class:`~repro.core.tokens.Word`, or None
        for a whole-file finding)."""
        line = getattr(node, "line", 0) or 0
        column = getattr(node, "column", 0) or 0
        ctx.diagnostics.append(
            Diagnostic(
                code=self.code,
                severity=severity if severity is not None else self.severity,
                message=message,
                source=ctx.source_name,
                line=line,
                column=column,
                suggestion=suggestion,
                rule=self.name,
                paper=self.paper,
            )
        )


@dataclass
class LintContext:
    """Everything a rule may consult while checking one script."""

    script: ast.Script
    source_name: str
    text: str
    config: LintConfig
    diagnostics: list[Diagnostic] = field(default_factory=list)


def _enabled(rules: Sequence[Rule], config: LintConfig) -> list[Rule]:
    chosen = []
    for rule in sorted(rules, key=lambda r: r.code):
        if config.select is not None and rule.code not in config.select:
            continue
        if rule.code in config.disable:
            continue
        chosen.append(rule)
    return chosen


def lint_script(
    script: ast.Script,
    text: str,
    *,
    source_name: Optional[str] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Diagnostic]:
    """Lint an already-parsed script (``text`` is its exact source)."""
    from .rules import default_rules  # deferred: rules.py imports this module

    config = config or LintConfig()
    ctx = LintContext(
        script=script,
        source_name=source_name or script.source_name,
        text=text,
        config=config,
    )
    for rule in _enabled(rules if rules is not None else default_rules(), config):
        rule.check(script, ctx)
    diagnostics = SuppressionMap.from_source(text).apply(ctx.diagnostics)
    if config.warn_as_error:
        diagnostics = promote_warnings(diagnostics)
    return sort_diagnostics(diagnostics)


def lint_text(
    text: str,
    source_name: str = "<script>",
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Diagnostic]:
    """Parse and lint ftsh source text.

    Raises :class:`~repro.core.errors.FtshSyntaxError` when the text does
    not parse — static analysis needs a tree; front ends map that to
    their "syntax error" exit path (exit status 2, like
    ``ftsh --parse-only``).
    """
    script = parse(text, source_name)
    return lint_script(script, text, source_name=source_name,
                       config=config, rules=rules)


def lint_file(
    path: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> list[Diagnostic]:
    """Lint one script file (OSError propagates to the caller)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return lint_text(text, path, config=config, rules=rules)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any finding is error severity (after promotion)."""
    return any(d.severity is Severity.ERROR for d in diagnostics)
