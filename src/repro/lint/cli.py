"""``python -m repro.lint`` — the stand-alone lint front end.

Usage::

    python -m repro.lint script.ftsh            # one file, human output
    python -m repro.lint examples/ tests/       # directories: every *.ftsh
    python -m repro.lint --format json …        # machine-readable report
    python -m repro.lint -W error …             # warnings fail the build
    python -m repro.lint --select FTL001,FTL002 # only these rules
    python -m repro.lint --list-rules           # print the rule catalogue

Exit status mirrors ``ftsh``: 0 when no finding reaches error severity,
1 when one does (``-W error`` promotes every warning), 2 on usage,
unreadable-file, or syntax errors — a file static analysis cannot parse
is a failure of the *input*, exactly as with ``ftsh --parse-only``.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import sys
from typing import Optional, Sequence

from ..core.errors import FtshSyntaxError
from .diagnostics import Diagnostic, Severity, diagnostics_to_json
from .engine import LintConfig, has_errors, lint_file
from .rules import RULES


def iter_script_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> tuple[list[str], list[str]]:
    """Expand files and directories into a sorted list of ``*.ftsh`` files.

    Directories are walked recursively; explicit file arguments are taken
    as-is (whatever their extension).  Returns ``(files, missing)`` where
    ``missing`` lists arguments that name nothing on disk.
    """
    files: list[str] = []
    missing: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".ftsh"):
                        files.append(os.path.join(root, name))
        elif os.path.exists(path):
            files.append(path)
        else:
            missing.append(path)
    normalized = []
    for path in sorted(dict.fromkeys(files)):
        posix = path.replace(os.sep, "/")
        if any(fnmatch.fnmatch(posix, pat) or pat in posix for pat in exclude):
            continue
        normalized.append(path)
    return normalized, missing


def _parse_codes(text: str) -> frozenset[str]:
    return frozenset(code.strip().upper() for code in text.split(",") if code.strip())


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static analysis for ftsh scripts: reject the paper's "
        "failure-discipline anti-patterns before anything runs.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="script files, or directories to scan for *.ftsh",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text, GCC style)",
    )
    parser.add_argument(
        "-W", dest="warnings", choices=("error",), metavar="error",
        help="-W error: treat warnings as errors (build-gating mode)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--disable", metavar="CODES", default="",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="skip files matching this glob/substring (repeatable)",
    )
    parser.add_argument(
        "-D", "--define", action="append", default=[], metavar="NAME[=VALUE]",
        help="treat NAME as externally defined (like ftsh -D; repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules(out) -> None:
    for code in sorted(RULES):
        cls = RULES[code]
        print(f"{code}  {cls.name:<22} {cls.severity.label:<8} "
              f"{cls.summary} [{cls.paper}]", file=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_argparser().parse_args(argv)
    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    if not args.paths:
        print("repro.lint: no files or directories given", file=sys.stderr)
        return 2

    select = _parse_codes(args.select) if args.select else None
    if select is not None:
        unknown = select - set(RULES)
        if unknown:
            print(f"repro.lint: unknown rule codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    config = LintConfig(
        warn_as_error=args.warnings == "error",
        disable=_parse_codes(args.disable),
        select=select,
        assume_defined=frozenset(
            item.partition("=")[0] for item in args.define
        ),
    )

    files, missing = iter_script_files(args.paths, exclude=args.exclude)
    for path in missing:
        print(f"repro.lint: cannot read {path}: no such file or directory",
              file=sys.stderr)
    if missing:
        return 2

    per_file: dict[str, list[Diagnostic]] = {}
    broken = False
    for path in files:
        try:
            per_file[path] = lint_file(path, config=config)
        except FtshSyntaxError as exc:
            print(f"repro.lint: {path}: syntax error: {exc}", file=sys.stderr)
            broken = True
        except RecursionError:
            print(f"repro.lint: {path}: syntax error: nesting too deep to "
                  "analyze", file=sys.stderr)
            broken = True
        except OSError as exc:
            print(f"repro.lint: cannot read {path}: {exc}", file=sys.stderr)
            broken = True

    if args.format == "json":
        print(diagnostics_to_json(per_file))
    else:
        findings = 0
        for path in sorted(per_file):
            for diag in per_file[path]:
                findings += 1
                print(diag.gcc())
                if diag.suggestion:
                    print(f"    fix: {diag.suggestion}")
        checked = len(per_file)
        noun = "file" if checked == 1 else "files"
        print(f"repro.lint: {checked} {noun} checked, "
              f"{findings} finding{'s' if findings != 1 else ''}")

    if broken:
        return 2
    if any(has_errors(diags) for diags in per_file.values()):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
