"""Per-line and per-file suppression comments.

Suppression rides on ordinary ftsh comments so suppressed scripts stay
valid for every other tool:

* ``# lint: disable=FTL001`` on a line silences those codes *on that
  line* (several codes separated by commas; ``all`` silences everything
  on the line);
* ``# lint: disable-file=FTL010`` anywhere in the file silences the
  codes for the whole file.

The scanner works on raw source text, not tokens — the lexer drops
comments — but it respects quoting: a ``#`` inside a quoted span is
content, not a comment (``echo "# lint: disable=FTL001"`` suppresses
nothing).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def _comment_of(line: str) -> str | None:
    """The comment part of ``line``, honouring quotes and escapes."""
    quote: str | None = None
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and quote != "'":
            i += 2
            continue
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[i:]
        i += 1
    return None


@dataclass
class SuppressionMap:
    """Which codes are silenced where, for one source file."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()

    @classmethod
    def from_source(cls, text: str) -> "SuppressionMap":
        by_line: dict[int, frozenset[str]] = {}
        file_wide: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            comment = _comment_of(line)
            if comment is None:
                continue
            for match in _DIRECTIVE.finditer(comment):
                codes = frozenset(
                    code.strip().upper()
                    for code in match.group("codes").split(",")
                )
                if match.group("kind") == "disable-file":
                    file_wide |= codes
                else:
                    by_line[lineno] = by_line.get(lineno, frozenset()) | codes
        return cls(by_line=by_line, file_wide=frozenset(file_wide))

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        code = diagnostic.code.upper()
        if code in self.file_wide or "ALL" in self.file_wide:
            return True
        codes = self.by_line.get(diagnostic.line)
        return codes is not None and (code in codes or "ALL" in codes)

    def apply(self, diagnostics: list[Diagnostic]) -> list[Diagnostic]:
        """Drop every suppressed diagnostic."""
        if not self.by_line and not self.file_wide:
            return diagnostics
        return [d for d in diagnostics if not self.suppresses(d)]
