"""The work queue at the heart of ``repro.dist``.

:class:`TaskQueue` is a small, lock-guarded, in-memory queue with the
semantics every backend shares:

* **submit** — tasks enter in submission order and are handed out FIFO;
* **claim** — a worker takes the next pending task under a *lease*: a
  deadline by which it must ack, nack, or heartbeat.  Batched variants
  (:meth:`~TaskQueue.claim_many`, :meth:`~TaskQueue.ack_many`,
  :meth:`~TaskQueue.nack_many`) move whole chunks per call — the wire
  win — while leases, worker-id guards, and max-attempts bounds stay
  strictly per-task, and every batched call piggybacks a heartbeat on
  the worker's other leases;
* **ack / nack** — terminal outcomes.  An ack stores the result; a nack
  either re-enqueues the task (transient failure) or fails it for good;
* **heartbeat** — extends every lease a worker holds, so long-running
  cells survive short lease windows;
* **reap** — expired leases (a worker that stopped heartbeating: crashed,
  hung, partitioned) put their tasks back on the queue, up to
  ``max_attempts`` per task.

That makes delivery *at-least-once*: a task whose worker dies is re-run
by another worker, which is safe here because every task is a pure
function of its spec — the same discipline the paper applies to grid
jobs (detect the failure, back off, try again) applied to our own
executor.  Exactly-once *results* come from the layer above: results
land in the content-addressed artifact store, so a re-run converges on
the same bytes.

The queue itself never executes anything and never talks to sockets —
the work-stealing backend drives it from a parent process, and the
socket coordinator exposes it over HTTP.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

#: Task lifecycle states.
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
FAILED = "failed"

#: States a task never leaves.
TERMINAL = frozenset({DONE, FAILED})

#: Default seconds a claim stays valid without an ack or heartbeat.
DEFAULT_LEASE = 30.0

#: Default executions allowed per task before it fails for good.
DEFAULT_MAX_ATTEMPTS = 3


class QueueError(Exception):
    """An operation that does not fit the queue's current state."""


@dataclass
class Task:
    """One unit of queued work (mutable; guarded by the queue lock).

    ``payload`` is opaque to the queue — backends put a
    :class:`~repro.parallel.executor.CellSpec` (work-stealing) or a wire
    document (socket) in it.  ``artifact`` optionally names the shared-
    store key where the result should be published/fetched.
    """

    task_id: str
    index: int
    payload: Any
    key: str = ""
    artifact: Optional[str] = None
    cacheable: bool = True
    state: str = PENDING
    attempts: int = 0
    worker: Optional[str] = None
    deadline: Optional[float] = None
    result: Any = None
    error: Optional[str] = None
    #: How the result was obtained: ``computed`` or ``store``.
    source: Optional[str] = None

    def describe(self) -> dict[str, Any]:
        """A JSON-able status row (the coordinator's /queue/status)."""
        return {
            "task_id": self.task_id,
            "index": self.index,
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
        }


@dataclass
class QueueStats:
    """Counters the queue keeps about its own behaviour."""

    submitted: int = 0
    claims: int = 0
    acks: int = 0
    nacks: int = 0
    expired: int = 0
    heartbeats: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "claims": self.claims,
            "acks": self.acks,
            "nacks": self.nacks,
            "expired": self.expired,
            "heartbeats": self.heartbeats,
        }


class TaskQueue:
    """In-memory submit/claim/ack/nack queue with lease timeouts.

    Thread-safe: the socket coordinator calls into it from HTTP handler
    threads while the orchestration loop reaps and drains.  ``clock`` is
    injectable so lease expiry is testable without sleeping.
    """

    def __init__(
        self,
        lease: float = DEFAULT_LEASE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be positive, got {lease}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.lease = lease
        self.max_attempts = max_attempts
        self.clock = clock
        self.stats = QueueStats()
        self._tasks: dict[str, Task] = {}
        self._pending: deque[str] = deque()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._draining = False
        self._sequence = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, payload: Any, key: str = "",
               artifact: Optional[str] = None,
               cacheable: bool = True) -> Task:
        """Enqueue one task; returns its record (id assigned here)."""
        with self._lock:
            if self._draining:
                raise QueueError("queue is draining; no new tasks")
            task = Task(
                task_id=f"t{self._sequence}",
                index=self._sequence,
                payload=payload,
                key=key,
                artifact=artifact,
                cacheable=cacheable,
            )
            self._sequence += 1
            self._tasks[task.task_id] = task
            self._pending.append(task.task_id)
            self.stats.submitted += 1
            return task

    def drain(self) -> None:
        """Refuse new submissions and tell idle claimers to go away."""
        with self._lock:
            self._draining = True
            self._done.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker: str,
              lease: Optional[float] = None) -> Optional[Task]:
        """Hand the next pending task to ``worker``, or None if idle.

        The caller gets the task under a lease of ``lease`` seconds
        (queue default if omitted); it must ack, nack, or heartbeat
        before the deadline or the task is reaped back to pending.
        Expired leases are collected on the way in, so a single-threaded
        driver never needs a separate reaper.
        """
        tasks = self.claim_many(worker, 1, lease=lease)
        return tasks[0] if tasks else None

    def claim_many(self, worker: str, max_tasks: int,
                   lease: Optional[float] = None) -> list[Task]:
        """Hand up to ``max_tasks`` pending tasks to ``worker``, FIFO.

        Each task gets its *own* lease deadline — expiry, re-delivery,
        and poison bounds remain per-task even when delivery is
        batched.  The claim also piggybacks a heartbeat: any lease the
        worker already holds is extended, so a worker busy with a long
        batch need not make a separate heartbeat call just because it
        came back for more work.
        """
        if not worker:
            raise QueueError("claim needs a worker id")
        if max_tasks < 1:
            raise QueueError(f"claim batch must be >= 1, got {max_tasks}")
        with self._lock:
            self._reap_locked()
            now = self.clock()
            self._extend_held_locked(worker, now)
            window = self.lease if lease is None else lease
            claimed: list[Task] = []
            while self._pending and len(claimed) < max_tasks:
                task = self._tasks[self._pending.popleft()]
                task.state = CLAIMED
                task.worker = worker
                task.attempts += 1
                task.deadline = now + window
                self.stats.claims += 1
                claimed.append(task)
            return claimed

    def ack(self, task_id: str, worker: str, result: Any = None,
            source: str = "computed") -> Task:
        """Complete a claimed task with its result."""
        with self._lock:
            task = self._claimed_by(task_id, worker)
            task.state = DONE
            task.result = result
            task.source = source
            task.worker = None
            task.deadline = None
            self.stats.acks += 1
            self._done.notify_all()
            return task

    def nack(self, task_id: str, worker: str, error: str,
             requeue: bool = True) -> Task:
        """Report a failure.  ``requeue=True`` puts the task back on the
        queue (until ``max_attempts`` is exhausted); ``requeue=False``
        fails it immediately — for errors retrying cannot fix."""
        with self._lock:
            task = self._claimed_by(task_id, worker)
            task.worker = None
            task.deadline = None
            self.stats.nacks += 1
            if requeue and task.attempts < self.max_attempts:
                task.state = PENDING
                task.error = error
                self._pending.append(task.task_id)
            else:
                task.state = FAILED
                task.error = error
                self._done.notify_all()
            return task

    def ack_many(self, worker: str,
                 acks: list[tuple[str, Any, str]]
                 ) -> tuple[list[str], list[str]]:
        """Complete a batch of claimed tasks: ``(task_id, result,
        source)`` triples.  Returns ``(acked, stale)`` task-id lists.

        Unlike :meth:`ack`, a stale entry — lease expired mid-batch and
        the task moved on — is *skipped*, not raised: one slow cell
        must not void its batchmates' perfectly good results.  The call
        piggybacks a heartbeat on any lease the worker still holds.
        """
        acked: list[str] = []
        stale: list[str] = []
        with self._lock:
            for task_id, result, source in acks:
                task = self._tasks.get(task_id)
                if (task is None or task.state != CLAIMED
                        or task.worker != worker):
                    stale.append(task_id)
                    continue
                task.state = DONE
                task.result = result
                task.source = source
                task.worker = None
                task.deadline = None
                self.stats.acks += 1
                acked.append(task_id)
            self._extend_held_locked(worker, self.clock())
            if acked:
                self._done.notify_all()
        return acked, stale

    def nack_many(self, worker: str,
                  nacks: list[tuple[str, str, bool]]) -> dict[str, str]:
        """Report a batch of failures: ``(task_id, error, requeue)``
        triples.  Returns each task's resulting state (``"stale"`` for
        entries the worker no longer holds).  Poison bounds stay
        per-task: one cell exhausting ``max_attempts`` fails alone,
        its batchmates re-enqueue as usual.
        """
        states: dict[str, str] = {}
        with self._lock:
            for task_id, error, requeue in nacks:
                task = self._tasks.get(task_id)
                if (task is None or task.state != CLAIMED
                        or task.worker != worker):
                    states[task_id] = "stale"
                    continue
                task.worker = None
                task.deadline = None
                task.error = error
                self.stats.nacks += 1
                if requeue and task.attempts < self.max_attempts:
                    task.state = PENDING
                    self._pending.append(task.task_id)
                else:
                    task.state = FAILED
                    self._done.notify_all()
                states[task_id] = task.state
            self._extend_held_locked(worker, self.clock())
        return states

    def heartbeat(self, worker: str) -> int:
        """Extend every lease ``worker`` holds; returns how many."""
        with self._lock:
            extended = self._extend_held_locked(worker, self.clock())
            self.stats.heartbeats += 1
            return extended

    def _extend_held_locked(self, worker: str, now: float) -> int:
        """The piggybacked heartbeat: refresh every lease held by
        ``worker``.  Counted in ``stats.heartbeats`` only when the
        caller is an explicit heartbeat request."""
        extended = 0
        for task in self._tasks.values():
            if task.state == CLAIMED and task.worker == worker:
                task.deadline = now + self.lease
                extended += 1
        return extended

    def _claimed_by(self, task_id: str, worker: str) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise QueueError(f"unknown task: {task_id}")
        if task.state != CLAIMED or task.worker != worker:
            # At-least-once in action: the lease expired and someone else
            # holds (or already finished) the task.  The late worker's
            # outcome is dropped; the store made the re-run identical.
            raise QueueError(
                f"task {task_id} is not leased to {worker} "
                f"(state={task.state}, worker={task.worker})")
        return task

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def reap_expired(self) -> list[Task]:
        """Re-enqueue every task whose lease expired; returns them.

        Tasks past ``max_attempts`` fail instead of re-enqueueing — a
        cell that kills every worker that touches it must not poison
        the fleet forever.
        """
        with self._lock:
            return self._reap_locked()

    def _reap_locked(self) -> list[Task]:
        now = self.clock()
        reaped: list[Task] = []
        for task in self._tasks.values():
            if (task.state == CLAIMED and task.deadline is not None
                    and task.deadline < now):
                task.worker = None
                task.deadline = None
                self.stats.expired += 1
                if task.attempts >= self.max_attempts:
                    task.state = FAILED
                    task.error = (f"lease expired after "
                                  f"{task.attempts} attempt(s)")
                    self._done.notify_all()
                else:
                    task.state = PENDING
                    self._pending.append(task.task_id)
                reaped.append(task)
        return reaped

    # ------------------------------------------------------------------
    # Introspection / completion
    # ------------------------------------------------------------------
    def get(self, task_id: str) -> Task:
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                raise QueueError(f"unknown task: {task_id}")
            return task

    def tasks(self) -> list[Task]:
        with self._lock:
            return sorted(self._tasks.values(), key=lambda t: t.index)

    def outstanding(self) -> int:
        """Tasks not yet terminal."""
        with self._lock:
            return sum(1 for task in self._tasks.values()
                       if task.state not in TERMINAL)

    def depth(self) -> int:
        """Tasks waiting to be claimed."""
        with self._lock:
            return len(self._pending)

    def in_flight(self) -> int:
        """Tasks currently out under a lease."""
        with self._lock:
            return sum(1 for task in self._tasks.values()
                       if task.state == CLAIMED)

    def finished(self) -> bool:
        with self._lock:
            return all(task.state in TERMINAL
                       for task in self._tasks.values())

    def failures(self) -> list[Task]:
        with self._lock:
            return [task for task in self._tasks.values()
                    if task.state == FAILED]

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every task is terminal (or ``timeout`` passes).

        Wakes on acks and terminal nacks; lease expiry is driven by the
        caller's reap loop, so pass a finite timeout when workers might
        die silently.
        """
        deadline = (self.clock() + timeout) if timeout is not None else None
        with self._lock:
            while not all(task.state in TERMINAL
                          for task in self._tasks.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.clock()
                    if remaining <= 0:
                        return False
                self._done.wait(remaining)
            return True
