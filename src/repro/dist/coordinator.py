"""The socket backend's server half: a work queue over HTTP.

:class:`CoordinatorApp` exposes a :class:`~repro.dist.queue.TaskQueue`
and an artifact store through the same framework-agnostic
``handle(method, target, body)`` core the service plane uses — a stdlib
``ThreadingHTTPServer`` mounts it, tests can call it without a socket.

The worker protocol (all JSON unless noted)::

    POST /queue/claim            {"worker", "lease"?}  -> 200 task
                                 {"worker", "max", "lease"?}
                                                       -> 200 {"tasks": [...]}
                                                       |  204 idle
                                                       |  410 drained
    POST /queue/tasks/{id}/ack   {"worker", "result", "source"}
    POST /queue/tasks/{id}/nack  {"worker", "error", "requeue"?}
    POST /queue/ack_many         {"worker", "acks": [{task_id, result,
                                  source}]}  -> {"acked": [...], "stale": [...]}
    POST /queue/nack_many        {"worker", "nacks": [{task_id, error,
                                  requeue}]} -> {"states": {...}}
    POST /queue/heartbeat        {"worker"}            -> {"extended": n}
    GET  /queue/status           queue + store + wire counters, task states
    GET  /payload/{digest}       cached cell payload (text/plain) | 404
    GET  /artifacts/{key}        pickled artifact (octet-stream) | 404
    PUT  /artifacts/{key}        publish a pickled artifact      -> 204
    GET  /healthz                liveness

This is wire-protocol **v2**: a claim carrying ``"max"`` leases up to
that many tasks in one exchange (each under its *own* per-task lease),
``ack_many``/``nack_many`` settle whole batches, every batched call
piggybacks a heartbeat on the worker's other leases, and large cell
payloads travel by content digest through ``/payload/<digest>`` (see
:mod:`repro.dist.wire`).  The v1 single-task routes remain served —
``REPRO_DIST_BATCH=0`` runs the fleet on them — and are the degenerate
batch of one.

A claim leases each task for ``lease`` seconds (bounded by the queue
default); ack/nack/heartbeat before the deadline or the task goes back
on the queue for someone else — at-least-once delivery, the paper's
retry discipline applied to our own executor.  410 on claim is the
drain signal: workers exit cleanly when the campaign is over.

Security: task payloads and artifacts are pickles.  Bind loopback (the
default) or a network you trust end-to-end; this protocol authenticates
nobody.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from ..obs.metrics import MetricsRegistry
from .queue import QueueError, Task, TaskQueue
from .wire import PayloadTable, WireError, decode_blob_ex

JSON = "application/json"
BINARY = "application/octet-stream"
TEXT = "text/plain"

#: Longest lease a worker may ask for, as a multiple of the queue default.
MAX_LEASE_FACTOR = 10.0

#: Most tasks a single claim may lease, whatever the worker asks for.
MAX_CLAIM_BATCH = 64


def _dumps(doc: Any) -> bytes:
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def _error(code: str, message: str) -> bytes:
    return _dumps({"error": {"code": code, "message": message}})


class CoordinatorApp:
    """Routes worker-protocol requests onto the queue and the store."""

    def __init__(self, queue: TaskQueue, store: Any = None,
                 payloads: Optional[PayloadTable] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.queue = queue
        self.store = store
        self.payloads = payloads
        # keep_series=False: the coordinator wants counters, not
        # timestamped series — no reason to drag the sim monitor in.
        self.metrics = metrics or MetricsRegistry(keep_series=False)
        self._ops = self.metrics.counter(
            "dist_worker_ops_total",
            "claim/ack/nack operations settled, per worker",
            labels=("worker", "op"))
        self._http_bytes = self.metrics.counter(
            "dist_http_bytes_total",
            "request/response body bytes through the coordinator",
            labels=("direction",))
        self._blob_bytes = self.metrics.counter(
            "dist_blob_bytes_total",
            "result/payload blob bytes, as shipped vs decompressed",
            labels=("encoding",))

    # ------------------------------------------------------------------
    def handle(self, method: str, target: str,
               body: bytes = b"") -> tuple[int, str, bytes]:
        parts = [part for part in target.split("?")[0].split("/") if part]
        self._http_bytes.labels(direction="in").inc(len(body))
        try:
            status, content_type, payload = self._dispatch(
                method, parts, body)
        except QueueError as exc:
            status, content_type, payload = 409, JSON, _error(
                "queue", str(exc))
        except WireError as exc:
            status, content_type, payload = 400, JSON, _error(
                "wire", str(exc))
        except _BadRequest as exc:
            status, content_type, payload = 400, JSON, _error(
                "bad-request", str(exc))
        except Exception as exc:  # noqa: BLE001 - the HTTP 500 boundary
            status, content_type, payload = 500, JSON, _error(
                "internal", f"{type(exc).__name__}: {exc}")
        self._http_bytes.labels(direction="out").inc(len(payload))
        return status, content_type, payload

    # ------------------------------------------------------------------
    def _task_doc(self, task: Task) -> dict[str, Any]:
        return {
            "task_id": task.task_id,
            "attempt": task.attempts,
            "artifact": task.artifact,
            "cell": task.payload,
        }

    def _count_blob(self, text: str, raw: int) -> None:
        self._blob_bytes.labels(encoding="wire").inc(len(text))
        self._blob_bytes.labels(encoding="raw").inc(raw)

    def _dispatch(self, method: str, parts: list[str],
                  body: bytes) -> tuple[int, str, bytes]:
        if parts == ["healthz"] and method == "GET":
            return 200, JSON, _dumps({"status": "ok"})

        if parts == ["queue", "claim"] and method == "POST":
            doc = _json_body(body)
            worker = _worker_id(doc)
            lease = doc.get("lease")
            if lease is not None:
                lease = min(float(lease),
                            self.queue.lease * MAX_LEASE_FACTOR)
            if "max" in doc:
                batch = max(1, min(int(doc["max"]), MAX_CLAIM_BATCH))
                tasks = self.queue.claim_many(worker, batch, lease=lease)
                if not tasks:
                    if self.queue.draining:
                        return 410, JSON, _error(
                            "drained", "queue is drained")
                    return 204, JSON, b""
                self._ops.labels(worker=worker, op="claim").inc(len(tasks))
                return 200, JSON, _dumps(
                    {"tasks": [self._task_doc(task) for task in tasks]})
            task = self.queue.claim(worker, lease=lease)
            if task is None:
                if self.queue.draining:
                    return 410, JSON, _error("drained", "queue is drained")
                return 204, JSON, b""
            self._ops.labels(worker=worker, op="claim").inc()
            return 200, JSON, _dumps(self._task_doc(task))

        if (len(parts) == 4 and parts[:2] == ["queue", "tasks"]
                and method == "POST"):
            task_id, action = parts[2], parts[3]
            doc = _json_body(body)
            worker = _worker_id(doc)
            if action == "ack":
                text = _require_str(doc, "result")
                result, wire_chars, raw = decode_blob_ex(text)
                self._count_blob(text, raw)
                source = str(doc.get("source") or "computed")
                self.queue.ack(task_id, worker, result=result, source=source)
                self._ops.labels(worker=worker, op="ack").inc()
                return 200, JSON, _dumps({"ok": True})
            if action == "nack":
                error = _require_str(doc, "error")
                requeue = bool(doc.get("requeue", True))
                task = self.queue.nack(task_id, worker, error,
                                       requeue=requeue)
                self._ops.labels(worker=worker, op="nack").inc()
                return 200, JSON, _dumps(
                    {"ok": True, "state": task.state})

        if parts == ["queue", "ack_many"] and method == "POST":
            doc = _json_body(body)
            worker = _worker_id(doc)
            entries = _require_list(doc, "acks")
            triples: list[tuple[str, Any, str]] = []
            rejected: list[str] = []
            for entry in entries:
                if not isinstance(entry, dict):
                    raise _BadRequest("each ack must be an object")
                task_id = _require_str(entry, "task_id")
                try:
                    text = _require_str(entry, "result")
                    result, _, raw = decode_blob_ex(text)
                except (WireError, _BadRequest):
                    # One undecodable result must not void the batch;
                    # the task stays leased and expires back to pending.
                    rejected.append(task_id)
                    continue
                self._count_blob(text, raw)
                source = str(entry.get("source") or "computed")
                triples.append((task_id, result, source))
            acked, stale = self.queue.ack_many(worker, triples)
            self._ops.labels(worker=worker, op="ack").inc(len(acked))
            return 200, JSON, _dumps(
                {"acked": acked, "stale": stale, "rejected": rejected})

        if parts == ["queue", "nack_many"] and method == "POST":
            doc = _json_body(body)
            worker = _worker_id(doc)
            entries = _require_list(doc, "nacks")
            triples = []
            for entry in entries:
                if not isinstance(entry, dict):
                    raise _BadRequest("each nack must be an object")
                triples.append((_require_str(entry, "task_id"),
                                _require_str(entry, "error"),
                                bool(entry.get("requeue", True))))
            states = self.queue.nack_many(worker, triples)
            settled = sum(1 for state in states.values() if state != "stale")
            self._ops.labels(worker=worker, op="nack").inc(settled)
            return 200, JSON, _dumps({"states": states})

        if parts == ["queue", "heartbeat"] and method == "POST":
            doc = _json_body(body)
            extended = self.queue.heartbeat(_worker_id(doc))
            return 200, JSON, _dumps({"extended": extended})

        if parts == ["queue", "status"] and method == "GET":
            return 200, JSON, _dumps(self._status_doc())

        if len(parts) == 2 and parts[0] == "payload" and method == "GET":
            if self.payloads is None:
                return 404, JSON, _error(
                    "no-payloads", "coordinator has no payload table")
            text = self.payloads.get(parts[1])
            if text is None:
                return 404, JSON, _error(
                    "miss", f"no payload {parts[1][:12]}...")
            return 200, TEXT, text.encode("ascii")

        if len(parts) == 2 and parts[0] == "artifacts":
            key = parts[1]
            if self.store is None:
                return 404, JSON, _error("no-store",
                                         "coordinator has no artifact store")
            if method == "GET":
                blob = self.store.fetch_bytes(key)
                if blob is None:
                    return 404, JSON, _error("miss", f"no artifact {key}")
                return 200, BINARY, blob
            if method == "PUT":
                try:
                    self.store.publish_bytes(key, body)
                except Exception as exc:  # noqa: BLE001 - bad blob
                    raise _BadRequest(f"unstorable artifact: {exc}")
                return 204, JSON, b""

        return 404, JSON, _error(
            "unknown-route", f"no route {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------------
    def _status_doc(self) -> dict[str, Any]:
        """The fleet-dashboard view: queue, leases, workers, wire."""
        workers: dict[str, dict[str, int]] = {}
        for child in self._ops.children():
            labels = child.labels_dict()
            ops = workers.setdefault(
                labels["worker"], {"claims": 0, "acks": 0, "nacks": 0})
            ops[labels["op"] + "s"] = int(child.value)

        def _count(family: Any, **labels: str) -> int:
            return int(family.labels(**labels).value)

        return {
            "draining": self.queue.draining,
            "outstanding": self.queue.outstanding(),
            "queue": {
                "depth": self.queue.depth(),
                "in_flight": self.queue.in_flight(),
            },
            "stats": self.queue.stats.as_dict(),
            "store": (self.store.stats()
                      if self.store is not None else None),
            "payloads": (self.payloads.stats()
                         if self.payloads is not None else None),
            "workers": workers,
            "wire": {
                "in_bytes": _count(self._http_bytes, direction="in"),
                "out_bytes": _count(self._http_bytes, direction="out"),
                "blob_wire_bytes": _count(self._blob_bytes,
                                          encoding="wire"),
                "blob_raw_bytes": _count(self._blob_bytes, encoding="raw"),
            },
            "tasks": [task.describe() for task in self.queue.tasks()],
        }


class _BadRequest(Exception):
    """Malformed request body/fields; mapped to 400."""


def _json_body(body: bytes) -> dict[str, Any]:
    if not body:
        raise _BadRequest("empty request body")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _BadRequest(f"body is not valid JSON ({exc})")
    if not isinstance(doc, dict):
        raise _BadRequest("body must be a JSON object")
    return doc


def _worker_id(doc: dict[str, Any]) -> str:
    worker = doc.get("worker")
    if not isinstance(worker, str) or not worker:
        raise _BadRequest("field 'worker' must be a non-empty string")
    return worker


def _require_str(doc: dict[str, Any], field: str) -> str:
    value = doc.get(field)
    if not isinstance(value, str):
        raise _BadRequest(f"field {field!r} must be a string")
    return value


def _require_list(doc: dict[str, Any], field: str) -> list[Any]:
    value = doc.get(field)
    if not isinstance(value, list):
        raise _BadRequest(f"field {field!r} must be a list")
    return value


# ---------------------------------------------------------------------------
# Stdlib skin
# ---------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-dist"
    protocol_version = "HTTP/1.1"
    # Response headers and body go out as separate writes; with Nagle on,
    # the body waits ~40ms for the client's delayed ACK — per request.
    # TCP_NODELAY turns a keep-alive round trip from ~44ms into ~0.3ms.
    disable_nagle_algorithm = True
    # Reap keep-alive connections idle this long: a client that parked a
    # pooled socket and left must not pin a handler thread forever.
    timeout = 30.0
    app: CoordinatorApp  # set by make_server on the subclass

    def _serve(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, content_type, payload = self.app.handle(
            method, self.path, body)
        self.send_response(status)
        if payload or status not in (204, 304):
            self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if payload:
            self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._serve("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._serve("PUT")

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet: /queue/status is the observable surface."""


def make_server(app: CoordinatorApp, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind the coordinator; ``port=0`` picks a free one."""
    handler = type("Handler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class CoordinatorServer:
    """A served CoordinatorApp with its own thread and lifecycle.

    ``with CoordinatorServer(queue, store) as url: ...`` — the pattern
    both the socket backend and the tests use.  ``start`` may be
    deferred: the server socket is bound in ``__init__``, so a backend
    can fork workers against ``url`` *before* the serve thread exists
    (their connections queue in the listen backlog) and keep the fork
    single-threaded.
    """

    def __init__(self, queue: TaskQueue, store: Any = None,
                 host: str = "127.0.0.1", port: int = 0,
                 payloads: Optional[PayloadTable] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.app = CoordinatorApp(queue, store, payloads=payloads,
                                  metrics=metrics)
        self.server = make_server(self.app, host=host, port=port)
        bound_host, bound_port = self.server.server_address[:2]
        self.url = f"http://{bound_host}:{bound_port}"
        self._thread: Optional[threading.Thread] = None

    def start(self) -> str:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever,
                name="repro-dist-coordinator", daemon=True)
            self._thread.start()
        return self.url

    def close(self) -> None:
        if self._thread is not None:
            # shutdown() blocks on serve_forever's exit handshake, so
            # only call it when the serve thread actually ran.
            self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
