"""The socket backend's server half: a work queue over HTTP.

:class:`CoordinatorApp` exposes a :class:`~repro.dist.queue.TaskQueue`
and an artifact store through the same framework-agnostic
``handle(method, target, body)`` core the service plane uses — a stdlib
``ThreadingHTTPServer`` mounts it, tests can call it without a socket.

The worker protocol (all JSON unless noted)::

    POST /queue/claim            {"worker", "lease"?}  -> 200 task
                                                       |  204 idle
                                                       |  410 drained
    POST /queue/tasks/{id}/ack   {"worker", "result", "source"}
    POST /queue/tasks/{id}/nack  {"worker", "error", "requeue"?}
    POST /queue/heartbeat        {"worker"}            -> {"extended": n}
    GET  /queue/status           queue + store counters, task states
    GET  /artifacts/{key}        pickled artifact (octet-stream) | 404
    PUT  /artifacts/{key}        publish a pickled artifact      -> 204
    GET  /healthz                liveness

A claim leases the task for ``lease`` seconds (bounded by the queue
default); ack/nack/heartbeat before the deadline or the task goes back
on the queue for someone else — at-least-once delivery, the paper's
retry discipline applied to our own executor.  410 on claim is the
drain signal: workers exit cleanly when the campaign is over.

Security: task payloads and artifacts are pickles.  Bind loopback (the
default) or a network you trust end-to-end; this protocol authenticates
nobody.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from .queue import QueueError, TaskQueue
from .wire import WireError, decode_blob

JSON = "application/json"
BINARY = "application/octet-stream"

#: Longest lease a worker may ask for, as a multiple of the queue default.
MAX_LEASE_FACTOR = 10.0


def _dumps(doc: Any) -> bytes:
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def _error(code: str, message: str) -> bytes:
    return _dumps({"error": {"code": code, "message": message}})


class CoordinatorApp:
    """Routes worker-protocol requests onto the queue and the store."""

    def __init__(self, queue: TaskQueue, store: Any = None) -> None:
        self.queue = queue
        self.store = store

    # ------------------------------------------------------------------
    def handle(self, method: str, target: str,
               body: bytes = b"") -> tuple[int, str, bytes]:
        parts = [part for part in target.split("?")[0].split("/") if part]
        try:
            return self._dispatch(method, parts, body)
        except QueueError as exc:
            return 409, JSON, _error("queue", str(exc))
        except WireError as exc:
            return 400, JSON, _error("wire", str(exc))
        except _BadRequest as exc:
            return 400, JSON, _error("bad-request", str(exc))
        except Exception as exc:  # noqa: BLE001 - the HTTP 500 boundary
            return 500, JSON, _error(
                "internal", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def _dispatch(self, method: str, parts: list[str],
                  body: bytes) -> tuple[int, str, bytes]:
        if parts == ["healthz"] and method == "GET":
            return 200, JSON, _dumps({"status": "ok"})

        if parts == ["queue", "claim"] and method == "POST":
            doc = _json_body(body)
            worker = _worker_id(doc)
            lease = doc.get("lease")
            if lease is not None:
                lease = min(float(lease),
                            self.queue.lease * MAX_LEASE_FACTOR)
            task = self.queue.claim(worker, lease=lease)
            if task is None:
                if self.queue.draining:
                    return 410, JSON, _error("drained", "queue is drained")
                return 204, JSON, b""
            return 200, JSON, _dumps({
                "task_id": task.task_id,
                "attempt": task.attempts,
                "artifact": task.artifact,
                "cell": task.payload,
            })

        if (len(parts) == 4 and parts[:2] == ["queue", "tasks"]
                and method == "POST"):
            task_id, action = parts[2], parts[3]
            doc = _json_body(body)
            worker = _worker_id(doc)
            if action == "ack":
                result = decode_blob(_require_str(doc, "result"))
                source = str(doc.get("source") or "computed")
                self.queue.ack(task_id, worker, result=result, source=source)
                return 200, JSON, _dumps({"ok": True})
            if action == "nack":
                error = _require_str(doc, "error")
                requeue = bool(doc.get("requeue", True))
                task = self.queue.nack(task_id, worker, error,
                                       requeue=requeue)
                return 200, JSON, _dumps(
                    {"ok": True, "state": task.state})

        if parts == ["queue", "heartbeat"] and method == "POST":
            doc = _json_body(body)
            extended = self.queue.heartbeat(_worker_id(doc))
            return 200, JSON, _dumps({"extended": extended})

        if parts == ["queue", "status"] and method == "GET":
            tasks = self.queue.tasks()
            return 200, JSON, _dumps({
                "draining": self.queue.draining,
                "outstanding": self.queue.outstanding(),
                "stats": self.queue.stats.as_dict(),
                "store": (self.store.stats()
                          if self.store is not None else None),
                "tasks": [task.describe() for task in tasks],
            })

        if len(parts) == 2 and parts[0] == "artifacts":
            key = parts[1]
            if self.store is None:
                return 404, JSON, _error("no-store",
                                         "coordinator has no artifact store")
            if method == "GET":
                blob = self.store.fetch_bytes(key)
                if blob is None:
                    return 404, JSON, _error("miss", f"no artifact {key}")
                return 200, BINARY, blob
            if method == "PUT":
                try:
                    self.store.publish_bytes(key, body)
                except Exception as exc:  # noqa: BLE001 - bad blob
                    raise _BadRequest(f"unstorable artifact: {exc}")
                return 204, JSON, b""

        return 404, JSON, _error(
            "unknown-route", f"no route {method} /{'/'.join(parts)}")


class _BadRequest(Exception):
    """Malformed request body/fields; mapped to 400."""


def _json_body(body: bytes) -> dict[str, Any]:
    if not body:
        raise _BadRequest("empty request body")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _BadRequest(f"body is not valid JSON ({exc})")
    if not isinstance(doc, dict):
        raise _BadRequest("body must be a JSON object")
    return doc


def _worker_id(doc: dict[str, Any]) -> str:
    worker = doc.get("worker")
    if not isinstance(worker, str) or not worker:
        raise _BadRequest("field 'worker' must be a non-empty string")
    return worker


def _require_str(doc: dict[str, Any], field: str) -> str:
    value = doc.get(field)
    if not isinstance(value, str):
        raise _BadRequest(f"field {field!r} must be a string")
    return value


# ---------------------------------------------------------------------------
# Stdlib skin
# ---------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-dist"
    protocol_version = "HTTP/1.1"
    app: CoordinatorApp  # set by make_server on the subclass

    def _serve(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, content_type, payload = self.app.handle(
            method, self.path, body)
        self.send_response(status)
        if payload or status not in (204, 304):
            self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if payload:
            self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._serve("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._serve("PUT")

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet: /queue/status is the observable surface."""


def make_server(app: CoordinatorApp, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind the coordinator; ``port=0`` picks a free one."""
    handler = type("Handler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class CoordinatorServer:
    """A served CoordinatorApp with its own thread and lifecycle.

    ``with CoordinatorServer(queue, store) as url: ...`` — the pattern
    both the socket backend and the tests use.
    """

    def __init__(self, queue: TaskQueue, store: Any = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = CoordinatorApp(queue, store)
        self.server = make_server(self.app, host=host, port=port)
        bound_host, bound_port = self.server.server_address[:2]
        self.url = f"http://{bound_host}:{bound_port}"
        self._thread: Optional[threading.Thread] = None

    def start(self) -> str:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever,
                name="repro-dist-coordinator", daemon=True)
            self._thread.start()
        return self.url

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
