"""The shared artifact store: one cell computed anywhere, warm everywhere.

This promotes the content-addressed result cache
(:class:`repro.parallel.cache.ResultCache`) to a *publish/fetch*
interface that distributed workers write into.  The key recipe is the
cache's own (function + canonical params + seed + code fingerprint), so
artifacts published by a worker are indistinguishable from entries a
local ``run_cells`` wrote — a campaign run on a worker fleet leaves the
same warm cache behind as a serial run, and vice versa.

Three implementations, one protocol (``key_for`` / ``fetch`` /
``publish``):

* :class:`ArtifactStore` — the real thing, over a ``ResultCache``
  directory.  Corrupt or torn entries read as misses (the cache already
  guarantees atomic writes), so a crashed worker can never poison the
  store;
* :class:`MemoryArtifactStore` — a dict, for coordinators running
  without a cache directory (artifacts then live for one campaign);
* :class:`HttpArtifactStore` — the client side of the coordinator's
  ``/artifacts/{key}`` endpoints, for workers that do not share a
  filesystem with the store.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Optional

from ..parallel.cache import ResultCache
from ..parallel.executor import CellSpec


class ArtifactStore:
    """Publish/fetch over the content-addressed result cache.

    Counters distinguish *warm serves* (``fetch`` hits — some other
    worker, or an earlier campaign, already computed the cell) from
    *publishes* (this worker contributed a new artifact).
    """

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache
        self.fetched = 0
        self.published = 0

    def key_for(self, spec: CellSpec) -> str:
        """The artifact key addressing ``spec``'s result."""
        return self.cache.key_for(spec.fn, spec.args, spec.kwargs)

    def fetch(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` if some worker already published ``key``."""
        hit, value = self.cache.get(key)
        if hit:
            self.fetched += 1
        return hit, value

    def publish(self, key: str, value: Any) -> None:
        """Make ``value`` visible to every other worker, atomically."""
        self.cache.put(key, value)
        self.published += 1

    # -- raw views, for serving artifacts over HTTP --------------------
    def fetch_bytes(self, key: str) -> Optional[bytes]:
        """The pickled artifact, or None; never raises on corruption."""
        hit, value = self.fetch(key)
        if not hit:
            return None
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def publish_bytes(self, key: str, blob: bytes) -> None:
        self.publish(key, pickle.loads(blob))

    def stats(self) -> dict[str, int]:
        return {"fetched": self.fetched, "published": self.published}


class MemoryArtifactStore:
    """A store with no disk behind it (coordinator without a cache).

    Artifacts survive for the coordinator's lifetime only — enough for
    workers to share results within one campaign, nothing warm across
    campaigns.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.fetched = 0
        self.published = 0

    def key_for(self, spec: CellSpec) -> str:
        # No cache, no fingerprint discipline to honor: any stable,
        # unique-per-cell name works for intra-campaign sharing.
        return f"mem/{spec.key}"

    def fetch(self, key: str) -> tuple[bool, Any]:
        blob = self.fetch_bytes(key)
        if blob is None:
            return False, None
        return True, pickle.loads(blob)

    def publish(self, key: str, value: Any) -> None:
        self.publish_bytes(
            key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def fetch_bytes(self, key: str) -> Optional[bytes]:
        with self._lock:
            blob = self._blobs.get(key)
        if blob is not None:
            self.fetched += 1
        return blob

    def publish_bytes(self, key: str, blob: bytes) -> None:
        pickle.loads(blob)  # reject undecodable uploads at the door
        with self._lock:
            self._blobs[key] = blob
        self.published += 1

    def stats(self) -> dict[str, int]:
        return {"fetched": self.fetched, "published": self.published}


class HttpArtifactStore:
    """Worker-side store client: the coordinator's ``/artifacts`` API.

    Keys are assigned by the coordinator (they ride on the task), so
    this class never computes one — ``key_for`` is deliberately absent.
    Transport failures degrade to misses/no-ops and are *counted*, not
    raised: a worker that cannot reach the store computes the cell
    itself and acks it ``source: "computed"`` — exactly the fallback
    the at-least-once queue expects, and one store outage mid-batch
    must never poison the rest of the chunk.

    Requests ride the shared keep-alive pool in
    :mod:`repro.service.http`, so store traffic reuses the worker's
    coordinator connection instead of opening a fresh socket per
    artifact.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        from ..service.http import HttpTransportError, http_request

        self._request = http_request
        self._transport_error = HttpTransportError
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.fetched = 0
        self.published = 0
        self.errors = 0

    def fetch(self, key: str) -> tuple[bool, Any]:
        try:
            response = self._request(
                f"{self.url}/artifacts/{key}", timeout=self.timeout,
                retries=2)
        except self._transport_error:
            self.errors += 1
            return False, None
        if response.status != 200:
            return False, None
        try:
            value = pickle.loads(response.body)
        except Exception:  # noqa: BLE001 - corrupt blob is a miss
            self.errors += 1
            return False, None
        self.fetched += 1
        return True, value

    def publish(self, key: str, value: Any) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            response = self._request(
                f"{self.url}/artifacts/{key}", method="PUT", body=blob,
                headers={"Content-Type": "application/octet-stream"},
                timeout=self.timeout)
        except self._transport_error:
            self.errors += 1
            return  # the ack still carries the result; nothing is lost
        if response.status not in (200, 204):
            self.errors += 1
            return
        self.published += 1

    def stats(self) -> dict[str, int]:
        return {"fetched": self.fetched, "published": self.published,
                "errors": self.errors}
