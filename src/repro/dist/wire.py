"""Moving cells and results between coordinator and workers.

The socket worker protocol ships a :class:`~repro.parallel.executor.
CellSpec` as a JSON task document: the cell function travels by name
(``module:qualname``, resolved by import on the worker — the same rule
the process-pool path already imposes, since pickling a function also
ships only its name), and the arguments/results travel as base64-
encoded pickles.  Pickle is the repo's canonical result transport (the
cache stores the same pickles), which is exactly what makes a worker's
ack byte-identical to a local computation.

Trust model: pickle execution means the coordinator and its workers
must trust each other.  The coordinator binds loopback by default and
the docs say so loudly; this layer adds no authentication.
"""

from __future__ import annotations

import base64
import importlib
import io
import pickle
import sys
from typing import Any, Callable, Mapping, Optional

from ..parallel.executor import CellSpec


class WireError(Exception):
    """A task or result document that does not decode."""


def _main_alias() -> Optional[str]:
    """The importable name behind ``__main__``, when there is one.

    ``python -m repro.experiments.chaos`` defines the campaign module's
    classes and functions in ``__main__`` — a module name that means
    something *different* inside a worker process.  runpy records the
    real name on ``__main__.__spec__``; pickling/naming by that makes
    the reference portable.  (``multiprocessing`` does this same fixup
    for its spawned children; the socket wire has to do it itself.)
    """
    spec = getattr(sys.modules.get("__main__"), "__spec__", None)
    name = getattr(spec, "name", None)
    if name and name not in ("__main__", "__mp_main__"):
        return name
    return None


def _lookup(module_name: str, qualname: str) -> Any:
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError:
        return None
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    return obj


def _import_attr(module_name: str, qualname: str) -> Any:
    """Unpickle hook for classes re-homed off ``__main__``."""
    obj = _lookup(module_name, qualname)
    if obj is None:
        raise WireError(f"no {qualname!r} in module {module_name!r}")
    return obj


class _Pickler(pickle.Pickler):
    """Pickles ``__main__``-defined classes by their importable name."""

    def reducer_override(self, obj):
        if (isinstance(obj, type)
                and obj.__module__ in ("__main__", "__mp_main__")):
            real = _main_alias()
            # The importable module may be a *second copy* of __main__
            # (runpy re-executes it), so the twin is an equivalent
            # class, not the identical object — name+kind is the test.
            if real is not None:
                twin = _lookup(real, obj.__qualname__)
                if isinstance(twin, type):
                    return (_import_attr, (real, obj.__qualname__))
        return NotImplemented


def encode_blob(value: Any) -> str:
    """Pickle + base64: JSON-safe transport for arbitrary cell data."""
    buffer = io.BytesIO()
    _Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_blob(text: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 - decode boundary
        raise WireError(f"undecodable payload: {type(exc).__name__}: {exc}")


def fn_name(fn: Callable[..., Any]) -> str:
    module = fn.__module__
    if module in ("__main__", "__mp_main__"):
        real = _main_alias()
        if real is not None and callable(_lookup(real, fn.__qualname__)):
            module = real
    return f"{module}:{fn.__qualname__}"


def resolve_fn(name: str) -> Callable[..., Any]:
    """Import ``module:qualname`` back into a callable.

    Only module-level callables resolve — the same restriction
    :func:`~repro.parallel.run_cells` documents for its process pool.
    """
    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise WireError(f"bad function name: {name!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise WireError(f"cannot import {module_name!r}: {exc}")
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise WireError(f"no {qualname!r} in module {module_name!r}")
    if not callable(obj):
        raise WireError(f"{name!r} is not callable")
    return obj


def encode_cell(spec: CellSpec) -> dict[str, Any]:
    """The JSON task payload a claim response carries."""
    return {
        "key": spec.key,
        "fn": fn_name(spec.fn),
        "blob": encode_blob((tuple(spec.args), dict(spec.kwargs))),
        "cacheable": spec.cacheable,
    }


def decode_cell(doc: Mapping[str, Any]) -> CellSpec:
    """Rebuild the cell a worker should execute."""
    if not isinstance(doc, Mapping):
        raise WireError("task payload must be an object")
    for field in ("key", "fn", "blob"):
        if not isinstance(doc.get(field), str):
            raise WireError(f"task payload needs string field {field!r}")
    args, kwargs = decode_blob(doc["blob"])
    return CellSpec(
        key=doc["key"],
        fn=resolve_fn(doc["fn"]),
        args=tuple(args),
        kwargs=dict(kwargs),
        cacheable=bool(doc.get("cacheable", True)),
    )
