"""Moving cells and results between coordinator and workers.

The socket worker protocol ships a :class:`~repro.parallel.executor.
CellSpec` as a JSON task document: the cell function travels by name
(``module:qualname``, resolved by import on the worker — the same rule
the process-pool path already imposes, since pickling a function also
ships only its name), and the arguments/results travel as base64-
encoded pickles.  Pickle is the repo's canonical result transport (the
cache stores the same pickles), which is exactly what makes a worker's
ack byte-identical to a local computation.

Wire-protocol v2 adds two bandwidth levers on top of that base:

* **compression** — a pickle at or past :data:`COMPRESS_MIN` bytes
  ships zlib-compressed when that actually helps, marked by a ``z:``
  prefix on the base64 text; plain blobs stay prefix-free, so v1
  documents still decode;
* **payload digests** — a large cell payload is published once into a
  coordinator-side :class:`PayloadTable` and referenced from the task
  document by its sha256 digest (``blob_digest``).  A worker resolves
  the digest through its :class:`PayloadCache` and fetches a miss from
  ``GET /payload/<digest>`` exactly once, so a campaign of near-
  identical cells ships its heavy arguments per *worker*, not per
  *cell*.

Trust model: pickle execution means the coordinator and its workers
must trust each other.  The coordinator binds loopback by default and
the docs say so loudly; this layer adds no authentication.
"""

from __future__ import annotations

import base64
import hashlib
import importlib
import io
import pickle
import sys
import threading
import zlib
from collections import OrderedDict
from typing import Any, Callable, Mapping, Optional

from ..parallel.executor import CellSpec

#: Pickles at or past this many bytes are candidates for compression.
COMPRESS_MIN = 512

#: Encoded payloads longer than this ship by digest, not inline.
PAYLOAD_INLINE_MAX = 2048

#: Worker-side payload cache budget (bytes of encoded text).
PAYLOAD_CACHE_BYTES = 32 * 1024 * 1024


class WireError(Exception):
    """A task or result document that does not decode."""


def _main_alias() -> Optional[str]:
    """The importable name behind ``__main__``, when there is one.

    ``python -m repro.experiments.chaos`` defines the campaign module's
    classes and functions in ``__main__`` — a module name that means
    something *different* inside a worker process.  runpy records the
    real name on ``__main__.__spec__``; pickling/naming by that makes
    the reference portable.  (``multiprocessing`` does this same fixup
    for its spawned children; the socket wire has to do it itself.)
    """
    spec = getattr(sys.modules.get("__main__"), "__spec__", None)
    name = getattr(spec, "name", None)
    if name and name not in ("__main__", "__mp_main__"):
        return name
    return None


def _lookup(module_name: str, qualname: str) -> Any:
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError:
        return None
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    return obj


def _import_attr(module_name: str, qualname: str) -> Any:
    """Unpickle hook for classes re-homed off ``__main__``."""
    obj = _lookup(module_name, qualname)
    if obj is None:
        raise WireError(f"no {qualname!r} in module {module_name!r}")
    return obj


class _Pickler(pickle.Pickler):
    """Pickles ``__main__``-defined classes by their importable name."""

    def reducer_override(self, obj):
        if (isinstance(obj, type)
                and obj.__module__ in ("__main__", "__mp_main__")):
            real = _main_alias()
            # The importable module may be a *second copy* of __main__
            # (runpy re-executes it), so the twin is an equivalent
            # class, not the identical object — name+kind is the test.
            if real is not None:
                twin = _lookup(real, obj.__qualname__)
                if isinstance(twin, type):
                    return (_import_attr, (real, obj.__qualname__))
        return NotImplemented


def encode_blob(value: Any) -> str:
    """Pickle + base64: JSON-safe transport for arbitrary cell data.

    Pickles at or past :data:`COMPRESS_MIN` bytes go through zlib first
    when that is a net win, marked with a ``z:`` prefix (base64 never
    contains ``:``, so the prefix is unambiguous and v1 blobs decode
    unchanged).
    """
    buffer = io.BytesIO()
    _Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    raw = buffer.getvalue()
    if len(raw) >= COMPRESS_MIN:
        packed = zlib.compress(raw, 6)
        if len(packed) < len(raw):
            return "z:" + base64.b64encode(packed).decode("ascii")
    return base64.b64encode(raw).decode("ascii")


def decode_blob(text: str) -> Any:
    return decode_blob_ex(text)[0]


def decode_blob_ex(text: str) -> tuple[Any, int, int]:
    """Decode a blob and report ``(value, wire_bytes, raw_bytes)``.

    ``wire_bytes`` is what travelled (the encoded text), ``raw_bytes``
    the decompressed pickle — the pair the coordinator's bytes-on-wire
    metrics are built from.
    """
    try:
        if text.startswith("z:"):
            raw = zlib.decompress(base64.b64decode(text[2:].encode("ascii")))
        else:
            raw = base64.b64decode(text.encode("ascii"))
        return pickle.loads(raw), len(text), len(raw)
    except Exception as exc:  # noqa: BLE001 - decode boundary
        raise WireError(f"undecodable payload: {type(exc).__name__}: {exc}")


def blob_digest(text: str) -> str:
    """Content address of an encoded blob: sha256 over the wire text."""
    return hashlib.sha256(text.encode("ascii")).hexdigest()


class PayloadTable:
    """Coordinator-side content-addressed store of encoded payloads.

    ``encode_cell`` publishes large blobs here and the coordinator
    serves them at ``GET /payload/<digest>``; the table deduplicates,
    so a thousand cells sharing one parameter pack hold one copy.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, str] = {}
        self._lock = threading.Lock()
        self.served = 0

    def put_text(self, text: str) -> str:
        digest = blob_digest(text)
        with self._lock:
            self._blobs.setdefault(digest, text)
        return digest

    def get(self, digest: str) -> Optional[str]:
        with self._lock:
            text = self._blobs.get(digest)
            if text is not None:
                self.served += 1
            return text

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "payloads": len(self._blobs),
                "bytes": sum(len(t) for t in self._blobs.values()),
                "served": self.served,
            }


class PayloadCache:
    """Worker-side LRU of payload texts, bounded by encoded bytes.

    A hit is free; a miss falls back to the caller's fetch (one HTTP
    round trip) and is memoized.  Eviction drops least-recently-used
    entries once the byte budget is exceeded — correctness never
    depends on residency, only latency does.
    """

    def __init__(self, max_bytes: int = PAYLOAD_CACHE_BYTES) -> None:
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> Optional[str]:
        with self._lock:
            text = self._entries.get(digest)
            if text is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return text

    def put(self, digest: str, text: str) -> None:
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = text
            self._bytes += len(text)
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, dropped = self._entries.popitem(last=False)
                self._bytes -= len(dropped)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def fn_name(fn: Callable[..., Any]) -> str:
    module = fn.__module__
    if module in ("__main__", "__mp_main__"):
        real = _main_alias()
        if real is not None and callable(_lookup(real, fn.__qualname__)):
            module = real
    return f"{module}:{fn.__qualname__}"


def resolve_fn(name: str) -> Callable[..., Any]:
    """Import ``module:qualname`` back into a callable.

    Only module-level callables resolve — the same restriction
    :func:`~repro.parallel.run_cells` documents for its process pool.
    """
    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise WireError(f"bad function name: {name!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise WireError(f"cannot import {module_name!r}: {exc}")
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise WireError(f"no {qualname!r} in module {module_name!r}")
    if not callable(obj):
        raise WireError(f"{name!r} is not callable")
    return obj


def encode_cell(spec: CellSpec, payloads: Optional[PayloadTable] = None,
                inline_max: int = PAYLOAD_INLINE_MAX) -> dict[str, Any]:
    """The JSON task payload a claim response carries.

    With a :class:`PayloadTable`, argument blobs longer than
    ``inline_max`` characters are published to the table and referenced
    by ``blob_digest``; small blobs stay inline — a digest round trip
    would cost more than it saves.
    """
    doc: dict[str, Any] = {
        "key": spec.key,
        "fn": fn_name(spec.fn),
        "cacheable": spec.cacheable,
    }
    blob = encode_blob((tuple(spec.args), dict(spec.kwargs)))
    if payloads is not None and len(blob) > inline_max:
        doc["blob_digest"] = payloads.put_text(blob)
        doc["blob_chars"] = len(blob)
    else:
        doc["blob"] = blob
    return doc


def decode_cell(doc: Mapping[str, Any],
                payloads: Optional[PayloadCache] = None,
                fetch: Optional[Callable[[str], str]] = None) -> CellSpec:
    """Rebuild the cell a worker should execute.

    A document carrying ``blob_digest`` instead of an inline ``blob``
    resolves through ``payloads`` (the worker's LRU) and, on a miss,
    ``fetch`` — one HTTP round trip to ``/payload/<digest>``, verified
    against the digest before use and memoized for the next cell.
    """
    if not isinstance(doc, Mapping):
        raise WireError("task payload must be an object")
    for field in ("key", "fn"):
        if not isinstance(doc.get(field), str):
            raise WireError(f"task payload needs string field {field!r}")
    blob = doc.get("blob")
    if not isinstance(blob, str):
        digest = doc.get("blob_digest")
        if not isinstance(digest, str):
            raise WireError("task payload needs 'blob' or 'blob_digest'")
        blob = payloads.get(digest) if payloads is not None else None
        if blob is None:
            if fetch is None:
                raise WireError(
                    f"no payload fetcher for digest {digest[:12]}...")
            blob = fetch(digest)
            if not isinstance(blob, str) or blob_digest(blob) != digest:
                raise WireError(
                    f"payload digest mismatch for {digest[:12]}...")
            if payloads is not None:
                payloads.put(digest, blob)
    args, kwargs = decode_blob(blob)
    return CellSpec(
        key=doc["key"],
        fn=resolve_fn(doc["fn"]),
        args=tuple(args),
        kwargs=dict(kwargs),
        cacheable=bool(doc.get("cacheable", True)),
    )
