"""The interchangeable executor backends behind ``run_cells``.

Three ways to drain the same work queue, one contract: results are
positionally aligned with the submitted cells and byte-identical no
matter which backend computed them (every cell is a pure function of
its spec, and results travel as the same pickles the cache stores).

* ``inprocess`` — today's path: serial or a ``ProcessPoolExecutor``
  inside :func:`repro.parallel.run_cells` itself.  The default; zero
  new moving parts.
* ``work-stealing`` — a multiprocess pool sharing one task queue: idle
  workers steal the next *chunk* of cells (sized adaptively from the
  observed cell cost), a dead worker's in-flight cells are re-enqueued
  (at-least-once), and results are published to the shared artifact
  store as they land.
* ``socket`` — the same queue served over HTTP by a
  :class:`~repro.dist.coordinator.CoordinatorServer`; workers are
  separate ``python -m repro.dist.worker`` processes (spawned locally
  here, or attached from anywhere the URL reaches) with heartbeats and
  lease-expiry re-enqueue.

Both multiprocess backends prefer **fork** for locally spawned workers
when it is safe (POSIX, and no other threads live in this process —
forking a threaded parent can deadlock on inherited locks): a forked
worker inherits the parent's warm imports, where a spawned/subprocess
worker pays the full interpreter + package import bill before its first
claim — the dominant cost of small campaigns on small machines.
Threaded parents (the service plane drives campaigns from job threads)
and non-fork platforms fall back to spawn/subprocess automatically;
``REPRO_DIST_FORK=0`` forces the fallback everywhere.

The dogfooding the ROADMAP promises is real: N workers contending for
one queue and one store *is* the paper's shared-service picture, with
the lease/retry machinery playing the role of the Ethernet discipline.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as stdlib_queue
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Optional, Sequence

from ..parallel.executor import (
    CampaignCancelled,
    CellSpec,
    _cancelled,
    _execute,
    resolve_jobs,
)
from . import batching_enabled, default_max_batch
from .queue import FAILED, TaskQueue
from .store import ArtifactStore, MemoryArtifactStore
from .wire import PayloadTable, encode_cell
from .worker import TARGET_BATCH_SECONDS, next_batch_size

#: Backends consume work items of shape
#: ``(original index, CellSpec, artifact key or None)``.
Progress = Callable[[str, str], None]

#: Seconds between orchestration-loop ticks (cancel checks, reaps).
_TICK = 0.05

#: Executions allowed per cell before the campaign fails.
MAX_ATTEMPTS = 3

#: Idle-poll base for locally spawned socket workers: they share a
#: machine with the coordinator, so polling can be much brisker than
#: the remote-worker default.
_LOCAL_POLL = 0.05

#: Environment override for the fork-vs-spawn worker decision.
FORK_ENV = "REPRO_DIST_FORK"


class BackendError(RuntimeError):
    """A distributed backend could not complete the campaign."""


def _fork_allowed() -> bool:
    """Fork local workers only when it cannot deadlock.

    Fork must be available, this process must be single-threaded (a
    forked child inherits a frozen copy of every lock, including the
    import lock — fatal if another thread held one mid-fork), and
    ``$REPRO_DIST_FORK`` must not veto it.
    """
    if os.environ.get(FORK_ENV, "").strip() == "0":
        return False
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return threading.active_count() == 1


# ---------------------------------------------------------------------------
# Work-stealing backend (multiprocess)
# ---------------------------------------------------------------------------

def _ws_worker_main(worker_id: str, task_q, result_q,
                    store_root: Optional[str],
                    fingerprint: Optional[str],
                    max_batch: int = 1) -> None:
    """One pool worker: steal a chunk, fetch-or-compute, publish, repeat.

    Runs in a child process; everything it needs arrives as picklable
    arguments.  The store is rebuilt from (root, fingerprint) so its
    keys agree with the parent's.  Chunking follows the same adaptive
    rule as the socket worker — claim enough cheap cells to fill
    ~``TARGET_BATCH_SECONDS`` of work, one message per chunk instead of
    two per cell — and every guard stays per-cell: a crashed cell fails
    alone, store trouble degrades that cell to a fresh compute.
    """
    store = None
    if store_root:
        from ..parallel.cache import ResultCache

        store = ArtifactStore(
            ResultCache(store_root, fingerprint=fingerprint))
    chunk_size = 1
    while True:
        item = task_q.get()
        if item is None:
            break
        chunk = [item]
        while len(chunk) < chunk_size:
            try:
                extra = task_q.get_nowait()
            except stdlib_queue.Empty:
                break
            if extra is None:
                # The drain sentinel belongs to the whole fleet; put it
                # back for whoever blocks next.
                task_q.put(None)
                break
            chunk.append(extra)
        result_q.put(("claim", worker_id,
                      [index for index, _spec, _artifact in chunk]))
        started = time.perf_counter()
        dones: list[tuple[int, Any, str]] = []
        fails: list[tuple[int, str]] = []
        for index, spec, artifact in chunk:
            try:
                if store is not None and artifact is not None:
                    try:
                        hit, value = store.fetch(artifact)
                    except Exception:  # noqa: BLE001 - store never poisons
                        hit = False
                    if hit:
                        dones.append((index, value, "store"))
                        continue
                value = _execute(spec)
                if store is not None and artifact is not None:
                    try:
                        store.publish(artifact, value)
                    except Exception:  # noqa: BLE001 - degrade to computed
                        pass
                dones.append((index, value, "computed"))
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                fails.append((index, f"{type(exc).__name__}: {exc}"))
        result_q.put(("batch", worker_id, dones, fails))
        chunk_size = next_batch_size(
            time.perf_counter() - started, len(chunk), max_batch,
            TARGET_BATCH_SECONDS)


def run_work_stealing(
    items: Sequence[tuple[int, CellSpec, Optional[str]]],
    jobs: Optional[int],
    cache,
    progress: Progress,
    cancel,
) -> dict[int, Any]:
    """Drain ``items`` with a fleet of stealing workers.

    At-least-once: when a worker dies mid-chunk (detected by liveness,
    the local analogue of an expired lease), every unresolved cell not
    held by a live worker is re-enqueued and a replacement worker is
    spawned.  Duplicate executions are harmless — cells are pure and
    the first result wins — but a cell that kills ``MAX_ATTEMPTS``
    workers in a row fails the campaign.
    """
    ctx = multiprocessing.get_context(
        "fork" if _fork_allowed() else "spawn")
    task_q: Any = ctx.Queue()
    result_q: Any = ctx.Queue()
    store_root = cache.root if cache is not None else None
    fingerprint = cache.fingerprint if cache is not None else None
    max_batch = default_max_batch()

    n_workers = max(1, min(resolve_jobs(jobs), len(items)))
    workers: dict[str, Any] = {}
    spawned = 0
    # Replacement workers are budgeted: a fleet whose every member dies
    # instantly (broken environment, unimportable __main__) must error
    # out, not respawn forever.
    spawn_budget = n_workers * (MAX_ATTEMPTS + 1)

    def spawn() -> None:
        nonlocal spawned
        if spawned >= spawn_budget:
            raise BackendError(
                f"work-stealing workers keep dying "
                f"({spawned} spawned for a fleet of {n_workers})")
        worker_id = f"ws{spawned}"
        spawned += 1
        process = ctx.Process(
            target=_ws_worker_main,
            args=(worker_id, task_q, result_q, store_root, fingerprint,
                  max_batch),
            daemon=True)
        process.start()
        workers[worker_id] = process

    for item in items:
        task_q.put(item)
    for _ in range(n_workers):
        spawn()

    by_index = {index: (spec, artifact) for index, spec, artifact in items}
    results: dict[int, Any] = {}
    attempts: dict[int, int] = {}
    inflight: dict[str, set[int]] = {}

    def shutdown(kill: bool = False) -> None:
        for process in workers.values():
            if kill:
                if process.is_alive():
                    process.terminate()
            else:
                task_q.put(None)
        deadline = time.monotonic() + 10.0
        for process in workers.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
        task_q.close()
        result_q.close()

    try:
        while len(results) < len(by_index):
            if _cancelled(cancel):
                raise CampaignCancelled("work-stealing backend cancelled")
            try:
                message = result_q.get(timeout=_TICK)
            except stdlib_queue.Empty:
                _ws_reap_dead(workers, inflight, by_index, results,
                              attempts, task_q, spawn)
                continue
            kind = message[0]
            if kind == "claim":
                _, worker_id, indices = message
                inflight[worker_id] = set(indices)
                for index in indices:
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] > MAX_ATTEMPTS:
                        raise BackendError(
                            f"cell {by_index[index][0].key} exceeded "
                            f"{MAX_ATTEMPTS} attempts")
                    if attempts[index] == 1:
                        progress(by_index[index][0].key, "run")
            elif kind == "batch":
                _, worker_id, dones, fails = message
                inflight.pop(worker_id, None)
                for index, value, _source in dones:
                    if index not in results:  # first result wins duplicates
                        results[index] = value
                        progress(by_index[index][0].key, "done")
                if fails:
                    # A cell that raised is deterministic; propagate like
                    # the in-process pool does rather than retrying it.
                    index, error = fails[0]
                    raise BackendError(
                        f"cell {by_index[index][0].key} failed: {error}")
    except BaseException:
        shutdown(kill=True)
        raise
    shutdown(kill=False)
    return results


def _ws_reap_dead(workers, inflight, by_index, results, attempts,
                  task_q, spawn) -> None:
    """Dead-worker recovery: re-enqueue orphaned cells, refill the pool."""
    dead = [worker_id for worker_id, process in workers.items()
            if not process.is_alive()]
    if not dead:
        return
    for worker_id in dead:
        del workers[worker_id]
        inflight.pop(worker_id, None)
    # A worker may die between stealing a chunk and reporting the claim,
    # so re-enqueue *every* unresolved cell no live worker holds —
    # duplicates are safe (pure cells, first result wins).
    held: set[int] = set()
    for indices in inflight.values():
        held.update(indices)
    for index, (spec, artifact) in by_index.items():
        if index not in results and index not in held:
            if attempts.get(index, 0) >= MAX_ATTEMPTS:
                raise BackendError(
                    f"cell {spec.key} exceeded {MAX_ATTEMPTS} attempts "
                    f"(workers keep dying under it)")
            task_q.put((index, spec, artifact))
    for _ in dead:
        spawn()


# ---------------------------------------------------------------------------
# Socket backend (HTTP coordinator + worker processes)
# ---------------------------------------------------------------------------

def _worker_env() -> dict[str, str]:
    """The spawned worker's environment, with ``repro`` importable."""
    import repro

    env = dict(os.environ)
    package_parent = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_parent if not existing
                         else package_parent + os.pathsep + existing)
    return env


def spawn_worker(url: str, worker_id: str, lease: float = 30.0,
                 poll: float = _LOCAL_POLL) -> subprocess.Popen:
    """Start one ``python -m repro.dist.worker`` against ``url``."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro.dist.worker", url,
         "--id", worker_id, "--lease", str(lease),
         "--poll", str(poll), "--quiet"],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _forked_worker_main(url: str, worker_id: str, lease: float,
                        max_batch: Optional[int]) -> None:
    """Entry point for fork-context local socket workers.

    Same loop as the CLI (claim over HTTP, shared store, batched acks)
    minus the interpreter + import bill — the fork inherited everything
    warm.  The shared HTTP pool cleared itself at fork, so this child
    opens its own coordinator connection.
    """
    from ..obs.push import resolve_push_url
    from .worker import worker_loop

    # The CLI entry resolves --obs-push/$REPRO_OBS_PUSH; a forked
    # member skips the CLI, so honour the env opt-in here.
    worker_loop(url, worker_id, poll=_LOCAL_POLL, lease=lease,
                max_batch=max_batch, obs_push=resolve_push_url(None))


class _FleetMember:
    """One local worker process, Popen or multiprocessing alike."""

    def __init__(self, process: Any) -> None:
        self._process = process
        self._popen = isinstance(process, subprocess.Popen)

    def alive(self) -> bool:
        if self._popen:
            return self._process.poll() is None
        return self._process.is_alive()

    def wait(self, timeout: float) -> None:
        if self._popen:
            try:
                self._process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                pass
        else:
            self._process.join(timeout=timeout)

    def terminate(self) -> None:
        if self.alive():
            self._process.terminate()


def _spawn_fleet(url: str, n_workers: int, lease: float,
                 use_fork: bool) -> list[_FleetMember]:
    if not use_fork:
        return [_FleetMember(spawn_worker(url, f"w{i}", lease=lease))
                for i in range(n_workers)]
    ctx = multiprocessing.get_context("fork")
    members = []
    for i in range(n_workers):
        process = ctx.Process(
            target=_forked_worker_main,
            args=(url, f"w{i}", lease, default_max_batch()),
            daemon=True)
        process.start()
        members.append(_FleetMember(process))
    return members


def run_socket(
    items: Sequence[tuple[int, CellSpec, Optional[str]]],
    jobs: Optional[int],
    cache,
    progress: Progress,
    cancel,
    lease: float = 30.0,
    host: str = "127.0.0.1",
    wait_timeout: Optional[float] = None,
) -> dict[int, Any]:
    """Serve ``items`` from a live coordinator to a local worker fleet.

    The coordinator is a real HTTP server on ``host`` (loopback unless
    told otherwise); workers are separate interpreters that could as
    well be on other machines.  Lease expiry re-enqueues the cells of
    any worker that stops heartbeating; results come back through acks,
    already decoded.

    Local workers fork from this (warm) process when that is safe —
    the decision and the forks both happen *before* the coordinator's
    serve thread starts, keeping the fork single-threaded; the bound
    listen socket queues the early birds' connections meanwhile.
    """
    from .coordinator import CoordinatorServer

    task_queue = TaskQueue(lease=lease, max_attempts=MAX_ATTEMPTS)
    store = (ArtifactStore(cache) if cache is not None
             else MemoryArtifactStore())
    payloads = PayloadTable() if batching_enabled() else None
    task_index: dict[str, int] = {}
    for index, spec, artifact in items:
        task = task_queue.submit(
            encode_cell(spec, payloads=payloads), key=spec.key,
            artifact=artifact, cacheable=spec.cacheable)
        task_index[task.task_id] = index

    n_workers = max(1, min(resolve_jobs(jobs), len(items)))
    seen_states: dict[str, str] = {}
    deadline = (time.monotonic() + wait_timeout
                if wait_timeout is not None else None)

    server = CoordinatorServer(task_queue, store, host=host,
                               payloads=payloads)
    use_fork = _fork_allowed()
    fleet = _spawn_fleet(server.url, n_workers, lease, use_fork)
    server.start()
    try:
        while not task_queue.finished():
            if _cancelled(cancel):
                raise CampaignCancelled("socket backend cancelled")
            if deadline is not None and time.monotonic() > deadline:
                raise BackendError(
                    f"campaign still unfinished after {wait_timeout:g}s")
            task_queue.reap_expired()
            for task in task_queue.tasks():
                previous = seen_states.get(task.task_id)
                if task.state != previous:
                    seen_states[task.task_id] = task.state
                    if task.state == "claimed" and previous is None:
                        progress(task.key, "run")
                    elif task.state == "done":
                        progress(task.key, "done")
            failed = task_queue.failures()
            if failed:
                raise BackendError("; ".join(
                    f"cell {task.key} failed: {task.error}"
                    for task in failed))
            if not any(member.alive() for member in fleet):
                raise BackendError(
                    "every worker exited with cells still queued "
                    f"({task_queue.outstanding()} outstanding)")
            # wait() wakes on the final ack; the timeout keeps the
            # reap/cancel/liveness checks ticking.
            task_queue.wait(timeout=_TICK)
    except BaseException:
        task_queue.drain()
        for member in fleet:
            member.terminate()
        server.close()
        raise
    # Campaign complete: signal drain so workers exit on their next
    # claim, give them a moment, then stop waiting on stragglers.
    task_queue.drain()
    waited_until = time.monotonic() + 2.0
    for member in fleet:
        member.wait(timeout=max(0.1, waited_until - time.monotonic()))
        member.terminate()
    server.close()

    results: dict[int, Any] = {}
    for task in task_queue.tasks():
        if task.state == FAILED:  # pragma: no cover - raised above
            raise BackendError(f"cell {task.key} failed: {task.error}")
        results[task_index[task.task_id]] = task.result
    return results
