"""The interchangeable executor backends behind ``run_cells``.

Three ways to drain the same work queue, one contract: results are
positionally aligned with the submitted cells and byte-identical no
matter which backend computed them (every cell is a pure function of
its spec, and results travel as the same pickles the cache stores).

* ``inprocess`` — today's path: serial or a ``ProcessPoolExecutor``
  inside :func:`repro.parallel.run_cells` itself.  The default; zero
  new moving parts.
* ``work-stealing`` — a spawn-safe multiprocess pool sharing one task
  queue: idle workers steal the next cell, a dead worker's in-flight
  cells are re-enqueued (at-least-once), and results are published to
  the shared artifact store as they land.
* ``socket`` — the same queue served over HTTP by a
  :class:`~repro.dist.coordinator.CoordinatorServer`; workers are
  separate ``python -m repro.dist.worker`` processes (spawned locally
  here, or attached from anywhere the URL reaches) with heartbeats and
  lease-expiry re-enqueue.

The dogfooding the ROADMAP promises is real: N workers contending for
one queue and one store *is* the paper's shared-service picture, with
the lease/retry machinery playing the role of the Ethernet discipline.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as stdlib_queue
import subprocess
import sys
import time
from typing import Any, Callable, Optional, Sequence

from ..parallel.executor import (
    CampaignCancelled,
    CellSpec,
    _cancelled,
    _execute,
    resolve_jobs,
)
from .queue import FAILED, TaskQueue
from .store import ArtifactStore, MemoryArtifactStore
from .wire import encode_cell

#: Backends consume work items of shape
#: ``(original index, CellSpec, artifact key or None)``.
Progress = Callable[[str, str], None]

#: Seconds between orchestration-loop ticks (cancel checks, reaps).
_TICK = 0.05

#: Executions allowed per cell before the campaign fails.
MAX_ATTEMPTS = 3


class BackendError(RuntimeError):
    """A distributed backend could not complete the campaign."""


# ---------------------------------------------------------------------------
# Work-stealing backend (multiprocess, spawn-safe)
# ---------------------------------------------------------------------------

def _ws_worker_main(worker_id: str, task_q, result_q,
                    store_root: Optional[str],
                    fingerprint: Optional[str]) -> None:
    """One pool worker: steal, fetch-or-compute, publish, repeat.

    Runs in a spawned child process; everything it needs arrives as
    picklable arguments.  The store is rebuilt from (root, fingerprint)
    so its keys agree with the parent's.
    """
    store = None
    if store_root:
        from ..parallel.cache import ResultCache

        store = ArtifactStore(
            ResultCache(store_root, fingerprint=fingerprint))
    while True:
        item = task_q.get()
        if item is None:
            break
        index, spec, artifact = item
        result_q.put(("claim", worker_id, index))
        try:
            if store is not None and artifact is not None:
                hit, value = store.fetch(artifact)
                if hit:
                    result_q.put(("done", worker_id, index, value, "store"))
                    continue
            value = _execute(spec)
            if store is not None and artifact is not None:
                store.publish(artifact, value)
            result_q.put(("done", worker_id, index, value, "computed"))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            result_q.put(("fail", worker_id, index,
                          f"{type(exc).__name__}: {exc}"))


def run_work_stealing(
    items: Sequence[tuple[int, CellSpec, Optional[str]]],
    jobs: Optional[int],
    cache,
    progress: Progress,
    cancel,
) -> dict[int, Any]:
    """Drain ``items`` with a fleet of spawn-safe stealing workers.

    At-least-once: when a worker dies mid-cell (detected by liveness,
    the local analogue of an expired lease), every unresolved cell not
    held by a live worker is re-enqueued and a replacement worker is
    spawned.  Duplicate executions are harmless — cells are pure and
    the first result wins — but a cell that kills ``MAX_ATTEMPTS``
    workers in a row fails the campaign.
    """
    ctx = multiprocessing.get_context("spawn")
    task_q: Any = ctx.Queue()
    result_q: Any = ctx.Queue()
    store_root = cache.root if cache is not None else None
    fingerprint = cache.fingerprint if cache is not None else None

    n_workers = max(1, min(resolve_jobs(jobs), len(items)))
    workers: dict[str, Any] = {}
    spawned = 0
    # Replacement workers are budgeted: a fleet whose every member dies
    # instantly (broken environment, unimportable __main__) must error
    # out, not respawn forever.
    spawn_budget = n_workers * (MAX_ATTEMPTS + 1)

    def spawn() -> None:
        nonlocal spawned
        if spawned >= spawn_budget:
            raise BackendError(
                f"work-stealing workers keep dying "
                f"({spawned} spawned for a fleet of {n_workers})")
        worker_id = f"ws{spawned}"
        spawned += 1
        process = ctx.Process(
            target=_ws_worker_main,
            args=(worker_id, task_q, result_q, store_root, fingerprint),
            daemon=True)
        process.start()
        workers[worker_id] = process

    for item in items:
        task_q.put(item)
    for _ in range(n_workers):
        spawn()

    by_index = {index: (spec, artifact) for index, spec, artifact in items}
    results: dict[int, Any] = {}
    attempts: dict[int, int] = {}
    inflight: dict[str, int] = {}

    def shutdown(kill: bool = False) -> None:
        for process in workers.values():
            if kill:
                if process.is_alive():
                    process.terminate()
            else:
                task_q.put(None)
        deadline = time.monotonic() + 10.0
        for process in workers.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
        task_q.close()
        result_q.close()

    try:
        while len(results) < len(by_index):
            if _cancelled(cancel):
                raise CampaignCancelled("work-stealing backend cancelled")
            try:
                message = result_q.get(timeout=_TICK)
            except stdlib_queue.Empty:
                _ws_reap_dead(workers, inflight, by_index, results,
                              attempts, task_q, spawn)
                continue
            kind = message[0]
            if kind == "claim":
                _, worker_id, index = message
                inflight[worker_id] = index
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] > MAX_ATTEMPTS:
                    raise BackendError(
                        f"cell {by_index[index][0].key} exceeded "
                        f"{MAX_ATTEMPTS} attempts")
                if attempts[index] == 1:
                    progress(by_index[index][0].key, "run")
            elif kind == "done":
                _, worker_id, index, value, _source = message
                inflight.pop(worker_id, None)
                if index not in results:  # first result wins duplicates
                    results[index] = value
                    progress(by_index[index][0].key, "done")
            elif kind == "fail":
                _, worker_id, index, error = message
                inflight.pop(worker_id, None)
                # A cell that raised is deterministic; propagate like the
                # in-process pool does rather than retrying it.
                raise BackendError(
                    f"cell {by_index[index][0].key} failed: {error}")
    except BaseException:
        shutdown(kill=True)
        raise
    shutdown(kill=False)
    return results


def _ws_reap_dead(workers, inflight, by_index, results, attempts,
                  task_q, spawn) -> None:
    """Dead-worker recovery: re-enqueue orphaned cells, refill the pool."""
    dead = [worker_id for worker_id, process in workers.items()
            if not process.is_alive()]
    if not dead:
        return
    for worker_id in dead:
        del workers[worker_id]
        inflight.pop(worker_id, None)
    # A worker may die between stealing a cell and reporting the claim,
    # so re-enqueue *every* unresolved cell no live worker holds —
    # duplicates are safe (pure cells, first result wins).
    held = set(inflight.values())
    for index, (spec, artifact) in by_index.items():
        if index not in results and index not in held:
            if attempts.get(index, 0) >= MAX_ATTEMPTS:
                raise BackendError(
                    f"cell {spec.key} exceeded {MAX_ATTEMPTS} attempts "
                    f"(workers keep dying under it)")
            task_q.put((index, spec, artifact))
    for _ in dead:
        spawn()


# ---------------------------------------------------------------------------
# Socket backend (HTTP coordinator + worker subprocesses)
# ---------------------------------------------------------------------------

def _worker_env() -> dict[str, str]:
    """The spawned worker's environment, with ``repro`` importable."""
    import repro

    env = dict(os.environ)
    package_parent = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_parent if not existing
                         else package_parent + os.pathsep + existing)
    return env


def spawn_worker(url: str, worker_id: str,
                 lease: float = 30.0) -> subprocess.Popen:
    """Start one ``python -m repro.dist.worker`` against ``url``."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro.dist.worker", url,
         "--id", worker_id, "--lease", str(lease), "--quiet"],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_socket(
    items: Sequence[tuple[int, CellSpec, Optional[str]]],
    jobs: Optional[int],
    cache,
    progress: Progress,
    cancel,
    lease: float = 30.0,
    host: str = "127.0.0.1",
    wait_timeout: Optional[float] = None,
) -> dict[int, Any]:
    """Serve ``items`` from a live coordinator to a local worker fleet.

    The coordinator is a real HTTP server on ``host`` (loopback unless
    told otherwise); workers are separate interpreters that could as
    well be on other machines.  Lease expiry re-enqueues the cells of
    any worker that stops heartbeating; results come back through acks,
    already decoded.
    """
    from .coordinator import CoordinatorServer

    task_queue = TaskQueue(lease=lease, max_attempts=MAX_ATTEMPTS)
    store = (ArtifactStore(cache) if cache is not None
             else MemoryArtifactStore())
    task_index: dict[str, int] = {}
    for index, spec, artifact in items:
        task = task_queue.submit(
            encode_cell(spec), key=spec.key, artifact=artifact,
            cacheable=spec.cacheable)
        task_index[task.task_id] = index

    n_workers = max(1, min(resolve_jobs(jobs), len(items)))
    fleet: list[subprocess.Popen] = []
    seen_states: dict[str, str] = {}
    deadline = (time.monotonic() + wait_timeout
                if wait_timeout is not None else None)

    server = CoordinatorServer(task_queue, store, host=host)
    url = server.start()
    try:
        fleet = [spawn_worker(url, f"w{i}", lease=lease)
                 for i in range(n_workers)]
        while not task_queue.finished():
            if _cancelled(cancel):
                raise CampaignCancelled("socket backend cancelled")
            if deadline is not None and time.monotonic() > deadline:
                raise BackendError(
                    f"campaign still unfinished after {wait_timeout:g}s")
            task_queue.reap_expired()
            for task in task_queue.tasks():
                previous = seen_states.get(task.task_id)
                if task.state != previous:
                    seen_states[task.task_id] = task.state
                    if task.state == "claimed" and previous is None:
                        progress(task.key, "run")
                    elif task.state == "done":
                        progress(task.key, "done")
            failed = task_queue.failures()
            if failed:
                raise BackendError("; ".join(
                    f"cell {task.key} failed: {task.error}"
                    for task in failed))
            if all(process.poll() is not None for process in fleet):
                raise BackendError(
                    "every worker exited with cells still queued "
                    f"({task_queue.outstanding()} outstanding)")
            time.sleep(_TICK)
    except BaseException:
        task_queue.drain()
        for process in fleet:
            if process.poll() is None:
                process.terminate()
        server.close()
        raise
    # Campaign complete: signal drain so workers exit on their next
    # claim, give them a moment, then stop waiting on stragglers.
    task_queue.drain()
    waited_until = time.monotonic() + 5.0
    for process in fleet:
        try:
            process.wait(timeout=max(0.1, waited_until - time.monotonic()))
        except subprocess.TimeoutExpired:
            process.terminate()
    server.close()

    results: dict[int, Any] = {}
    for task in task_queue.tasks():
        if task.state == FAILED:  # pragma: no cover - raised above
            raise BackendError(f"cell {task.key} failed: {task.error}")
        results[task_index[task.task_id]] = task.result
    return results
