"""``repro.dist`` — the work-queue executor behind ``run_cells``.

The subsystem in one sentence: campaigns submit cells to a
:class:`~repro.dist.queue.TaskQueue` (claim/ack/nack with lease
timeouts, at-least-once delivery), workers drain it through one of
three interchangeable backends, and results flow through a shared
artifact store so a cell computed anywhere is a warm hit everywhere.

Select a backend per call (``run_cells(..., backend="socket")``), per
process (``REPRO_DIST_BACKEND=work-stealing``), or per campaign CLI
(``--backend`` on runall/chaos/variance and the service plane).  The
scorecard contract holds across all of them: cells are pure functions
of their specs, so every backend produces byte-identical results.

See ``docs/DISTRIBUTED.md`` for the full tour.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

from ..parallel.executor import CellSpec, Progress

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_DIST_BACKEND"

#: Environment toggle for wire-protocol v2 batching ("0" -> v1 singles).
BATCH_ENV = "REPRO_DIST_BATCH"

#: Most cells a worker claims/chunks per exchange when batching is on.
DEFAULT_MAX_BATCH = 16


def batching_enabled() -> bool:
    """Wire-protocol v2 batching is on unless $REPRO_DIST_BATCH says no.

    Turning it off (``0``/``false``/``off``/``no``) runs the fleet on
    the v1 single-claim protocol — the CI scorecard cross-check and the
    bench's batched-vs-unbatched throughput section both use this.
    """
    return os.environ.get(BATCH_ENV, "1").strip().lower() not in (
        "0", "false", "off", "no")


def default_max_batch() -> int:
    """The claim/chunk ceiling the current batch toggle implies."""
    return DEFAULT_MAX_BATCH if batching_enabled() else 1

#: The default backend: today's serial/process-pool path.
DEFAULT_BACKEND = "inprocess"

#: Canonical backend names -> accepted aliases.
BACKENDS: dict[str, tuple[str, ...]] = {
    "inprocess": ("inprocess", "in-process", "local"),
    "work-stealing": ("work-stealing", "workstealing", "steal"),
    "socket": ("socket", "http"),
}

_ALIASES = {alias: name
            for name, aliases in BACKENDS.items()
            for alias in aliases}


def backend_names() -> list[str]:
    """The canonical backend names, for CLI ``choices=``."""
    return list(BACKENDS)


def resolve_backend(name: Optional[str] = None) -> str:
    """Normalize a backend choice: arg, else $REPRO_DIST_BACKEND, else
    the in-process default.  Unknown names raise ``ValueError``."""
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise ValueError(
            f"unknown dist backend {name!r}; expected one of "
            f"{sorted(_ALIASES)}")
    return canonical


def run_dist_cells(
    backend: str,
    cells: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cache=None,
    progress: Optional[Progress] = None,
    cancel=None,
) -> list[Any]:
    """Execute ``cells`` on a non-default backend; same contract as
    :func:`repro.parallel.run_cells` (which is the only caller —
    campaigns never import this directly).

    The parent still does the cache precheck, so warm cells short-
    circuit without touching the backend; pending cells ship with their
    artifact key and the *workers* publish results into the shared
    store (no parent-side ``cache.put`` — by the time a result is
    acked, the store already has it).
    """
    from . import backends

    name = resolve_backend(backend)
    say = progress if progress is not None else (lambda _key, _status: None)
    results: list[Any] = [None] * len(cells)
    items: list[tuple[int, CellSpec, Optional[str]]] = []
    for index, spec in enumerate(cells):
        artifact = None
        if cache is not None and spec.cacheable:
            artifact = cache.key_for(spec.fn, spec.args, spec.kwargs)
            hit, value = cache.get(artifact)
            if hit:
                say(spec.key, "hit")
                results[index] = value
                continue
        items.append((index, spec, artifact))

    if not items:
        return results
    if name == "inprocess":
        raise ValueError(
            "run_dist_cells is for non-default backends; run_cells "
            "handles 'inprocess' itself")
    if name == "work-stealing":
        computed = backends.run_work_stealing(
            items, jobs, cache, say, cancel)
    else:
        computed = backends.run_socket(items, jobs, cache, say, cancel)
    for index, value in computed.items():
        results[index] = value
    return results


__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "BATCH_ENV",
    "DEFAULT_BACKEND",
    "DEFAULT_MAX_BATCH",
    "backend_names",
    "batching_enabled",
    "default_max_batch",
    "resolve_backend",
    "run_dist_cells",
]
