"""The socket worker: pull cells from a coordinator, push results back.

::

    python -m repro.dist.worker http://127.0.0.1:8777 --id w0

The loop is deliberately boring — claim, maybe fetch from the shared
store, compute, publish, ack — with the paper's client discipline wired
into every edge:

* transient transport errors back off exponentially (capped) and retry;
* an idle queue (204) is polled gently, not hammered;
* a drained queue (410) is a clean exit;
* while a cell runs, a heartbeat thread extends the lease, so slow
  cells survive short lease windows but a *crashed* worker's lease
  expires and the coordinator re-queues its task;
* a cell whose artifact is already in the store is acked as
  ``source: "store"`` without recomputing — one worker's work is every
  worker's warm hit.

Workers share the coordinator's artifact store through its
``/artifacts`` endpoints, so nothing assumes a shared filesystem.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Any, Optional

from ..parallel.executor import CellSpec
from ..service.http import (
    HttpTransportError,
    backoff_delay,
    http_request,
)
from .store import HttpArtifactStore
from .wire import WireError, decode_cell, encode_blob

#: Seconds between claim attempts while the queue is idle.
DEFAULT_POLL = 0.2

#: Lease the worker requests per claim.
DEFAULT_LEASE = 30.0


class WorkerError(Exception):
    """A protocol-level failure the worker cannot work around."""


class _Heartbeat:
    """Extends the worker's leases every ``interval`` seconds."""

    def __init__(self, client: "CoordinatorClient",
                 interval: float) -> None:
        self._client = client
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-dist-heartbeat", daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.heartbeat()
            except HttpTransportError:
                # A missed heartbeat is survivable (the lease has slack);
                # a dead coordinator will fail the next claim loudly.
                pass

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class CoordinatorClient:
    """The worker's half of the queue protocol (stdlib HTTP only)."""

    def __init__(self, url: str, worker_id: str,
                 lease: float = DEFAULT_LEASE,
                 timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.worker_id = worker_id
        self.lease = lease
        self.timeout = timeout

    def _post(self, path: str, doc: dict[str, Any],
              retries: int = 0) -> tuple[int, Any]:
        response = http_request(
            self.url + path, method="POST",
            body=json.dumps(doc).encode(),
            headers={"Content-Type": "application/json"},
            timeout=self.timeout, retries=retries)
        payload: Any = None
        if response.body:
            try:
                payload = json.loads(response.body.decode())
            except (ValueError, UnicodeDecodeError):
                payload = None
        return response.status, payload

    # -- protocol verbs (claim/heartbeat are idempotent: retried) -------
    def claim(self) -> tuple[str, Optional[dict[str, Any]]]:
        """``("task", doc)``, ``("idle", None)`` or ``("drained", None)``."""
        status, doc = self._post(
            "/queue/claim",
            {"worker": self.worker_id, "lease": self.lease}, retries=3)
        if status == 200 and isinstance(doc, dict):
            return "task", doc
        if status == 204:
            return "idle", None
        if status == 410:
            return "drained", None
        raise WorkerError(f"claim failed: HTTP {status} {doc!r}")

    def ack(self, task_id: str, result: Any, source: str) -> None:
        status, doc = self._post(
            f"/queue/tasks/{task_id}/ack",
            {"worker": self.worker_id, "result": encode_blob(result),
             "source": source})
        if status == 409:
            # Lease lost: another worker owns (or finished) the task.
            # At-least-once means this is a dropped duplicate, not an
            # error worth dying over.
            return
        if status != 200:
            raise WorkerError(f"ack {task_id} failed: HTTP {status} {doc!r}")

    def nack(self, task_id: str, error: str, requeue: bool = True) -> None:
        status, doc = self._post(
            f"/queue/tasks/{task_id}/nack",
            {"worker": self.worker_id, "error": error, "requeue": requeue})
        if status not in (200, 409):
            raise WorkerError(f"nack {task_id} failed: HTTP {status} {doc!r}")

    def heartbeat(self) -> None:
        self._post("/queue/heartbeat", {"worker": self.worker_id})


def execute_cell(spec: CellSpec) -> Any:
    """Run one decoded cell exactly as the local executor would."""
    from ..parallel.executor import _execute

    return _execute(spec)


def run_task(client: CoordinatorClient, store: HttpArtifactStore,
             doc: dict[str, Any]) -> str:
    """Execute one claimed task document; returns the result source."""
    task_id = str(doc.get("task_id"))
    cell_doc = doc.get("cell")
    try:
        spec = decode_cell(cell_doc if isinstance(cell_doc, dict) else {})
    except WireError as exc:
        # Undecodable cells will not improve with retries.
        client.nack(task_id, f"wire: {exc}", requeue=False)
        return "error"
    artifact = doc.get("artifact")
    with _Heartbeat(client, interval=max(client.lease / 3.0, 0.5)):
        if artifact and spec.cacheable:
            hit, value = store.fetch(str(artifact))
            if hit:
                client.ack(task_id, value, source="store")
                return "store"
        try:
            value = execute_cell(spec)
        except Exception as exc:  # noqa: BLE001 - cell isolation boundary
            client.nack(task_id, f"{type(exc).__name__}: {exc}")
            return "error"
        if artifact and spec.cacheable:
            store.publish(str(artifact), value)
        client.ack(task_id, value, source="computed")
        return "computed"


def worker_loop(
    url: str,
    worker_id: str,
    poll: float = DEFAULT_POLL,
    lease: float = DEFAULT_LEASE,
    max_tasks: Optional[int] = None,
    say=lambda line: None,
) -> int:
    """Claim and execute until the queue drains; returns tasks handled."""
    client = CoordinatorClient(url, worker_id, lease=lease)
    store = HttpArtifactStore(url)
    handled = 0
    idle_streak = 0
    while max_tasks is None or handled < max_tasks:
        try:
            kind, doc = client.claim()
        except HttpTransportError as exc:
            # The coordinator is gone (shutdown race or crash).  Its
            # queue state outlives us either way; exit instead of
            # spinning against a dead socket.
            say(f"coordinator unreachable, exiting: {exc}")
            break
        if kind == "drained":
            say("queue drained, exiting")
            break
        if kind == "idle":
            # Gentle polling with a little backoff, not a tight loop.
            time.sleep(backoff_delay(min(idle_streak, 4), base=poll,
                                     cap=poll * 8))
            idle_streak += 1
            continue
        idle_streak = 0
        assert doc is not None
        source = run_task(client, store, doc)
        say(f"task {doc.get('task_id')} [{source}]")
        handled += 1
    return handled


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.worker",
        description="pull campaign cells from a repro.dist coordinator")
    parser.add_argument("url", help="coordinator base URL")
    parser.add_argument("--id", default=None,
                        help="worker id (default: host:pid)")
    parser.add_argument("--poll", type=float, default=DEFAULT_POLL,
                        help="seconds between claims when idle")
    parser.add_argument("--lease", type=float, default=DEFAULT_LEASE,
                        help="requested lease seconds per task")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="exit after handling N tasks")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    worker_id = args.id or f"{os.uname().nodename}:{os.getpid()}"
    say = ((lambda line: None) if args.quiet else
           (lambda line: print(f"worker {worker_id}: {line}", flush=True)))
    try:
        handled = worker_loop(
            args.url, worker_id, poll=args.poll, lease=args.lease,
            max_tasks=args.max_tasks, say=say)
    except WorkerError as exc:
        print(f"worker {worker_id}: fatal: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    say(f"handled {handled} task(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
