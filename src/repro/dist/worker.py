"""The socket worker: pull cells from a coordinator, push results back.

::

    python -m repro.dist.worker http://127.0.0.1:8777 --id w0

The loop is deliberately boring — claim a batch, maybe fetch from the
shared store, compute, publish, ack the batch — with the paper's client
discipline wired into every edge:

* transient transport errors back off exponentially (capped) and retry;
* an idle queue (204) is polled with *jittered* Ethernet-style
  exponential backoff — a fleet of idle workers must not stampede the
  coordinator in lockstep — reset on the next successful claim;
* a drained queue (410) is a clean exit;
* while a batch runs, a heartbeat thread extends the leases (and every
  claim/ack piggybacks one), so slow cells survive short lease windows
  but a *crashed* worker's leases expire and the coordinator re-queues
  its tasks;
* a cell whose artifact is already in the store is acked as
  ``source: "store"`` without recomputing — one worker's work is every
  worker's warm hit.  Store trouble (a transport failure mid-batch,
  say) degrades that one cell to ``source: "computed"``; it never
  poisons its batchmates.

Batching is the wire-protocol v2 throughput lever: the worker claims a
*chunk* of cells sized from the observed per-cell cost (aiming for
:data:`TARGET_BATCH_SECONDS` of work per round trip), executes them
all, and settles the whole chunk with one ``ack_many``.  Cheap cells
amortize round trips; expensive cells shrink the chunk back toward one
so lease granularity stays honest.  ``REPRO_DIST_BATCH=0`` pins the
loop to the v1 single-claim protocol.

Workers share the coordinator's artifact store through its
``/artifacts`` endpoints, so nothing assumes a shared filesystem.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from typing import Any, Optional

from ..obs.api import Observability
from ..obs.push import ObsPusher, resolve_push_url
from ..parallel.executor import CellSpec
from ..service.http import (
    HttpTransportError,
    http_request,
    jittered_delay,
)
from . import default_max_batch
from .store import HttpArtifactStore
from .wire import PayloadCache, WireError, decode_cell, encode_blob

#: Base seconds between claim attempts while the queue is idle.
DEFAULT_POLL = 0.1

#: Lease the worker requests per task.
DEFAULT_LEASE = 30.0

#: Seconds of work a batch should carry: the adaptive chunker divides
#: this by the observed mean cell cost to size the next claim.
TARGET_BATCH_SECONDS = 0.5


class WorkerError(Exception):
    """A protocol-level failure the worker cannot work around."""


class _Heartbeat:
    """Extends the worker's leases every ``interval`` seconds."""

    def __init__(self, client: "CoordinatorClient",
                 interval: float) -> None:
        self._client = client
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-dist-heartbeat", daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.heartbeat()
            except HttpTransportError:
                # A missed heartbeat is survivable (the lease has slack);
                # a dead coordinator will fail the next claim loudly.
                pass

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class CoordinatorClient:
    """The worker's half of the queue protocol (stdlib HTTP only).

    Rides the shared keep-alive pool in :mod:`repro.service.http`, so a
    worker's whole campaign flows over one persistent connection.
    """

    def __init__(self, url: str, worker_id: str,
                 lease: float = DEFAULT_LEASE,
                 timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.worker_id = worker_id
        self.lease = lease
        self.timeout = timeout

    def _post(self, path: str, doc: dict[str, Any],
              retries: int = 0) -> tuple[int, Any]:
        response = http_request(
            self.url + path, method="POST",
            body=json.dumps(doc).encode(),
            headers={"Content-Type": "application/json"},
            timeout=self.timeout, retries=retries)
        payload: Any = None
        if response.body:
            try:
                payload = json.loads(response.body.decode())
            except (ValueError, UnicodeDecodeError):
                payload = None
        return response.status, payload

    # -- protocol verbs --------------------------------------------------
    # claim/heartbeat are idempotent and ack_many/nack_many are
    # duplicate-safe (a re-delivered settle just reports stale), so all
    # of them retry on transport failures.
    def claim(self, max_tasks: Optional[int] = None
              ) -> tuple[str, list[dict[str, Any]]]:
        """``("tasks", docs)``, ``("idle", [])`` or ``("drained", [])``.

        ``max_tasks`` > 1 asks the v2 batched route for a chunk; omitted
        (or 1 with batching off) it stays on the v1 single-task wire.
        """
        doc: dict[str, Any] = {"worker": self.worker_id,
                               "lease": self.lease}
        if max_tasks is not None and max_tasks > 1:
            doc["max"] = max_tasks
        status, payload = self._post("/queue/claim", doc, retries=3)
        if status == 200 and isinstance(payload, dict):
            if "tasks" in payload:
                tasks = payload["tasks"]
                if isinstance(tasks, list):
                    return "tasks", [t for t in tasks if isinstance(t, dict)]
            else:
                return "tasks", [payload]
        if status == 204:
            return "idle", []
        if status == 410:
            return "drained", []
        raise WorkerError(f"claim failed: HTTP {status} {payload!r}")

    def ack(self, task_id: str, result: Any, source: str) -> None:
        status, doc = self._post(
            f"/queue/tasks/{task_id}/ack",
            {"worker": self.worker_id, "result": encode_blob(result),
             "source": source})
        if status == 409:
            # Lease lost: another worker owns (or finished) the task.
            # At-least-once means this is a dropped duplicate, not an
            # error worth dying over.
            return
        if status != 200:
            raise WorkerError(f"ack {task_id} failed: HTTP {status} {doc!r}")

    def nack(self, task_id: str, error: str, requeue: bool = True) -> None:
        status, doc = self._post(
            f"/queue/tasks/{task_id}/nack",
            {"worker": self.worker_id, "error": error, "requeue": requeue})
        if status not in (200, 409):
            raise WorkerError(f"nack {task_id} failed: HTTP {status} {doc!r}")

    def ack_many(self, acks: list[tuple[str, Any, str]]) -> list[str]:
        """Settle a batch of results; returns the stale task ids."""
        if not acks:
            return []
        status, doc = self._post(
            "/queue/ack_many",
            {"worker": self.worker_id,
             "acks": [{"task_id": task_id, "result": encode_blob(result),
                       "source": source}
                      for task_id, result, source in acks]},
            retries=2)
        if status != 200 or not isinstance(doc, dict):
            raise WorkerError(f"ack_many failed: HTTP {status} {doc!r}")
        stale = doc.get("stale")
        return [str(t) for t in stale] if isinstance(stale, list) else []

    def nack_many(self, nacks: list[tuple[str, str, bool]]) -> None:
        if not nacks:
            return
        status, doc = self._post(
            "/queue/nack_many",
            {"worker": self.worker_id,
             "nacks": [{"task_id": task_id, "error": error,
                        "requeue": requeue}
                       for task_id, error, requeue in nacks]},
            retries=2)
        if status != 200:
            raise WorkerError(f"nack_many failed: HTTP {status} {doc!r}")

    def heartbeat(self) -> None:
        self._post("/queue/heartbeat", {"worker": self.worker_id})

    def payload(self, digest: str) -> str:
        """Fetch a content-addressed cell payload; raises WireError on
        a miss (a digest the coordinator cannot serve will not appear
        by retrying the same campaign)."""
        try:
            response = http_request(
                f"{self.url}/payload/{digest}", timeout=self.timeout,
                retries=2)
        except HttpTransportError as exc:
            raise WireError(f"payload fetch failed: {exc}")
        if response.status != 200:
            raise WireError(
                f"payload {digest[:12]}...: HTTP {response.status}")
        return response.body.decode("ascii")


class WorkerTelemetry:
    """The worker's own registry, pushed to a fleet aggregator.

    The dist fleet dogfooding the paper's thesis: every worker counts
    its claim outcomes, settled cells, busy/elapsed seconds (the
    aggregator derives utilisation from exactly that counter pair) and
    the jittered idle backoffs it actually slept — so fleet contention
    on the coordinator becomes as measurable as the simulated
    scenarios.  Pushes are cumulative and best-effort; with no URL,
    :meth:`disabled` instances keep every call a cheap no-op.
    """

    def __init__(self, url: Optional[str], worker_id: str) -> None:
        self.enabled = url is not None
        if not self.enabled:
            return
        self.obs = Observability.wall(keep_series=False)
        metrics = self.obs.metrics
        self._claims = metrics.counter(
            "dist_worker_claims_total", "claim outcomes",
            labels=("outcome",))
        self._cells = metrics.counter(
            "dist_worker_cells_total", "cells settled by result source",
            labels=("source",))
        self._busy = metrics.counter(
            "dist_worker_busy_seconds_total", "seconds executing batches")
        self._elapsed = metrics.counter(
            "dist_worker_elapsed_seconds_total",
            "wall seconds since the loop started")
        self._backoff = metrics.histogram(
            "dist_worker_idle_backoff_seconds",
            "jittered idle backoff sleeps")
        self._batch = metrics.gauge(
            "dist_worker_batch_size", "current adaptive chunk size")
        self._pusher = ObsPusher(
            url, source=f"worker/{worker_id}",
            labels={"component": "dist-worker", "worker": worker_id})
        self._mark = time.perf_counter()

    @classmethod
    def disabled(cls) -> "WorkerTelemetry":
        return cls(None, "")

    def claim(self, kind: str) -> None:
        if self.enabled:
            self._claims.labels(outcome=kind).inc()

    def idle_sleep(self, seconds: float) -> None:
        if self.enabled:
            self._backoff.observe(seconds)

    def batch_done(self, outcomes: dict[str, str], elapsed: float,
                   next_batch: int) -> None:
        if not self.enabled:
            return
        for source in outcomes.values():
            self._cells.labels(source=source).inc()
        self._busy.inc(elapsed)
        self._batch.set(next_batch)
        self.push()

    def push(self) -> None:
        """Advance the elapsed counter and ship current totals."""
        if not self.enabled:
            return
        now = time.perf_counter()
        self._elapsed.inc(now - self._mark)
        self._mark = now
        self._pusher.push(self.obs)


def execute_cell(spec: CellSpec) -> Any:
    """Run one decoded cell exactly as the local executor would."""
    from ..parallel.executor import _execute

    return _execute(spec)


def process_batch(
    client: CoordinatorClient,
    store: HttpArtifactStore,
    docs: list[dict[str, Any]],
    payloads: Optional[PayloadCache] = None,
    batched: bool = True,
) -> dict[str, str]:
    """Execute a claimed chunk; returns ``{task_id: source}`` outcomes.

    Every guard is per-cell: an undecodable cell nacks terminally, a
    crashed cell nacks for retry, and store trouble — including an
    :class:`HttpTransportError` surfacing mid-batch — quietly degrades
    that one cell to ``source: "computed"``.  Nothing a single cell
    does can void its batchmates' results.
    """
    acks: list[tuple[str, Any, str]] = []
    nacks: list[tuple[str, str, bool]] = []
    outcomes: dict[str, str] = {}
    with _Heartbeat(client, interval=max(client.lease / 3.0, 0.5)):
        for doc in docs:
            task_id = str(doc.get("task_id"))
            cell_doc = doc.get("cell")
            try:
                spec = decode_cell(
                    cell_doc if isinstance(cell_doc, dict) else {},
                    payloads=payloads, fetch=client.payload)
            except WireError as exc:
                # Undecodable cells will not improve with retries.
                nacks.append((task_id, f"wire: {exc}", False))
                outcomes[task_id] = "error"
                continue
            artifact = doc.get("artifact")
            use_store = bool(artifact) and spec.cacheable
            if use_store:
                try:
                    hit, value = store.fetch(str(artifact))
                except Exception:  # noqa: BLE001 - store never poisons
                    hit = False
                if hit:
                    acks.append((task_id, value, "store"))
                    outcomes[task_id] = "store"
                    continue
            try:
                value = execute_cell(spec)
            except Exception as exc:  # noqa: BLE001 - cell isolation
                nacks.append((task_id, f"{type(exc).__name__}: {exc}", True))
                outcomes[task_id] = "error"
                continue
            if use_store:
                try:
                    store.publish(str(artifact), value)
                except Exception:  # noqa: BLE001 - degrade to computed
                    pass
            acks.append((task_id, value, "computed"))
            outcomes[task_id] = "computed"
        if batched:
            client.ack_many(acks)
            client.nack_many(nacks)
        else:
            for task_id, value, source in acks:
                client.ack(task_id, value, source)
            for task_id, error, requeue in nacks:
                client.nack(task_id, error, requeue=requeue)
    return outcomes


def run_task(client: CoordinatorClient, store: HttpArtifactStore,
             doc: dict[str, Any]) -> str:
    """Execute one claimed task document; returns the result source."""
    outcomes = process_batch(client, store, [doc], batched=False)
    return outcomes.get(str(doc.get("task_id")), "error")


def next_batch_size(elapsed: float, handled: int, max_batch: int,
                    target: float = TARGET_BATCH_SECONDS) -> int:
    """Size the next claim from the chunk just finished.

    ``target / mean_cell_seconds``, clamped to ``[1, max_batch]`` —
    cheap cells grow the chunk until round trips amortize, expensive
    cells shrink it back to one so a lost lease re-runs one cell, not
    sixteen.
    """
    if max_batch <= 1:
        return 1
    mean = elapsed / max(handled, 1)
    if mean <= 0:
        return max_batch
    return max(1, min(max_batch, int(target / mean) or 1))


def worker_loop(
    url: str,
    worker_id: str,
    poll: float = DEFAULT_POLL,
    lease: float = DEFAULT_LEASE,
    max_tasks: Optional[int] = None,
    say=lambda line: None,
    max_batch: Optional[int] = None,
    rng: Optional[random.Random] = None,
    obs_push: Optional[str] = None,
) -> int:
    """Claim and execute until the queue drains; returns tasks handled."""
    if max_batch is None:
        max_batch = default_max_batch()
    rng = rng or random.Random()
    client = CoordinatorClient(url, worker_id, lease=lease)
    store = HttpArtifactStore(url)
    payloads = PayloadCache()
    telemetry = WorkerTelemetry(obs_push, worker_id)
    handled = 0
    idle_streak = 0
    batch = 1
    while max_tasks is None or handled < max_tasks:
        want = batch
        if max_tasks is not None:
            want = min(want, max_tasks - handled)
        try:
            kind, docs = client.claim(
                max_tasks=want if max_batch > 1 else None)
        except HttpTransportError as exc:
            # The coordinator is gone (shutdown race or crash).  Its
            # queue state outlives us either way; exit instead of
            # spinning against a dead socket.
            say(f"coordinator unreachable, exiting: {exc}")
            break
        telemetry.claim(kind)
        if kind == "drained":
            say("queue drained, exiting")
            break
        if kind == "idle":
            # Jittered Ethernet-style backoff: a small deterministic
            # floor (never a hot spin) plus a uniformly random draw
            # from a doubling window, so parallel idle workers spread
            # out instead of re-colliding on the coordinator together.
            # Truncated at poll*4: past that the collision pressure is
            # gone and longer naps only delay noticing the drain.
            nap = (poll * 0.25
                   + jittered_delay(min(idle_streak, 4), base=poll,
                                    cap=poll * 4, rng=rng))
            telemetry.idle_sleep(nap)
            time.sleep(nap)
            idle_streak += 1
            continue
        idle_streak = 0
        started = time.perf_counter()
        outcomes = process_batch(client, store, docs, payloads=payloads,
                                 batched=max_batch > 1)
        elapsed = time.perf_counter() - started
        for task_id, source in outcomes.items():
            say(f"task {task_id} [{source}]")
        handled += len(docs)
        batch = next_batch_size(elapsed, len(docs), max_batch)
        telemetry.batch_done(outcomes, elapsed, batch)
    telemetry.push()
    return handled


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.worker",
        description="pull campaign cells from a repro.dist coordinator")
    parser.add_argument("url", help="coordinator base URL")
    parser.add_argument("--id", default=None,
                        help="worker id (default: host:pid)")
    parser.add_argument("--poll", type=float, default=DEFAULT_POLL,
                        help="base seconds between claims when idle")
    parser.add_argument("--lease", type=float, default=DEFAULT_LEASE,
                        help="requested lease seconds per task")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="exit after handling N tasks")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="cells claimed per exchange ceiling "
                             "(default: $REPRO_DIST_BATCH toggle)")
    parser.add_argument("--obs-push", default=None, metavar="URL",
                        help="push worker telemetry to a fleet "
                             "aggregator (default $REPRO_OBS_PUSH, or "
                             "off)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    worker_id = args.id or f"{os.uname().nodename}:{os.getpid()}"
    say = ((lambda line: None) if args.quiet else
           (lambda line: print(f"worker {worker_id}: {line}", flush=True)))
    try:
        handled = worker_loop(
            args.url, worker_id, poll=args.poll, lease=args.lease,
            max_tasks=args.max_tasks, max_batch=args.max_batch, say=say,
            obs_push=resolve_push_url(args.obs_push))
    except WorkerError as exc:
        print(f"worker {worker_id}: fatal: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    say(f"handled {handled} task(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
