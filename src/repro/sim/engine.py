"""The discrete-event engine: a two-tier event list and a virtual clock.

Design notes (per the hpc-parallel guide: simple and legible first, then
measured — ``BENCH_campaign.json`` tracks the numbers):

* Entries are ``(time, pseq, event)`` tuples where ``pseq`` packs the
  dispatch priority above a monotonically increasing sequence counter
  (``priority << 62 | seq``).  Ordering is therefore exactly the classic
  ``(time, priority, sequence)`` key — stable and FIFO for same-time
  events, which the resource queues rely on for fairness — but entries
  compare in a single int comparison after the time, and the unique
  ``seq`` guarantees comparisons never reach the event object.
* Priority 0 is reserved for urgent deliveries (interrupts) so that an
  interrupt scheduled "now" beats ordinary events scheduled "now".
* The event list is two-tiered: ``_heap`` receives every ``_schedule``
  (a binary heap, as before), but whenever the dispatch loop finds the
  heap has grown past a small threshold with nothing else pending it
  sorts the backlog *once* into ``_run`` — a descending-sorted list
  drained from the tail.  Popping a Python list tail is several times
  faster than ``heappop`` (no sift-down, no per-level tuple compares),
  so bulk workloads (the figure sweeps pre-schedule thousands of
  timeouts) dispatch at array speed while incremental scheduling keeps
  heap semantics.  Correctness does not depend on which tier an entry
  sits in: the loop always dispatches the smaller of the run tail and
  the heap head under the full ``(time, pseq)`` key.
* Callback lists may contain ``None`` tombstones: detaching a waiter
  (see :meth:`Process._resume`) is O(1) — it nulls its slot instead of
  ``list.remove`` — and the dispatch loop skips dead slots.  Cancelled
  timeouts therefore stay in the event list and are discarded when
  popped rather than searched for.
* A failed event that nobody defused re-raises at the engine loop:
  errors crash loudly instead of vanishing.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from ..core.errors import BudgetExceeded, SimulationError
from .events import AllOf, AnyOf, Carrier, Event, Timeout
from .process import Process, ProcessGenerator
from .rng import RandomStreams

#: Ordinary event priority; interrupts use :data:`PRIORITY_URGENT`.
PRIORITY_NORMAL = 1
PRIORITY_URGENT = 0

#: Bits reserved for the sequence counter below the packed priority.
_SEQ_BITS = 62

#: Value returned by :meth:`Engine.peek` when no events remain.
INFINITY = float("inf")

#: Heap backlogs larger than this are sorted into the fast run tier
#: when the run is empty (below it, plain heappop wins).
_MIGRATE_MIN = 16

#: Upper bound on the carrier free list (enough for any realistic
#: number of simultaneously in-flight resumes; excess is left to GC).
_CARRIER_POOL_MAX = 64


class Engine:
    """Owns the virtual clock and runs events in time order."""

    def __init__(
        self,
        start_time: float = 0.0,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self._now = start_time
        #: Descending-sorted fast tier, drained from the tail.
        self._run: list[tuple[float, int, Event]] = []
        #: Insertion tier: a binary heap fed by :meth:`_schedule`.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = count(1).__next__
        #: Free list of consumed :class:`Carrier` events for
        #: :meth:`immediate` (zero-alloc resume path).
        self._carriers: list[Carrier] = []
        #: The process currently executing (for self-interrupt detection).
        self.active_process: Optional[Process] = None
        #: Named random streams shared by everything attached to this
        #: engine.  Substrates that need stochastic behaviour default to
        #: a stream named after themselves, so one master seed fully
        #: determines a run even when callers pass no explicit rng.
        self.streams = streams if streams is not None else RandomStreams(0)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap,
            (self._now + delay, priority << _SEQ_BITS | self._seq(), event),
        )

    def immediate(
        self,
        ok: bool,
        value: Any,
        callback: Callable[[Event], None],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` for the current instant without a fresh event.

        The carrier delivered to the callback reports ``ok``/``value``
        exactly like a triggered event; failed carriers arrive pre-defused
        (the callback owns the outcome, the engine must not re-raise).
        Carriers come from a free list — the common resume paths
        (bootstrap, interrupts, already-resolved yields) allocate nothing
        once the pool is warm.  Ordering obeys the normal
        ``(time, priority, sequence)`` key, so an immediate still queues
        FIFO behind same-instant events scheduled before it.
        """
        carriers = self._carriers
        carrier = carriers.pop() if carriers else Carrier(self)
        cbs = carrier._cbs
        cbs[0] = callback
        carrier.callbacks = cbs
        carrier._ok = ok
        carrier._value = value
        carrier._defused = not ok
        heapq.heappush(
            self._heap,
            (self._now, priority << _SEQ_BITS | self._seq(), carrier),
        )
        return carrier

    def _recycle(self, carrier: Carrier) -> None:
        """Return a consumed carrier to the free list (bounded)."""
        if len(self._carriers) < _CARRIER_POOL_MAX:
            self._carriers.append(carrier)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``INFINITY`` if none."""
        if self._run:
            run_head = self._run[-1][0]
            return min(run_head, self._heap[0][0]) if self._heap else run_head
        return self._heap[0][0] if self._heap else INFINITY

    def _pop_entry(self) -> tuple[float, int, Event]:
        """Remove and return the globally smallest entry (callers guard
        against emptiness)."""
        run_ = self._run
        heap = self._heap
        if run_:
            if heap and heap[0] < run_[-1]:
                return heapq.heappop(heap)
            return run_.pop()
        return heapq.heappop(heap)

    def step(self) -> None:
        """Process exactly one event."""
        if not self._run and not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _key, event = self._pop_entry()
        if when < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            if callback is not None:
                callback(event)
        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event fires.

        * ``until`` is ``None``: run to queue exhaustion.
        * ``until`` is a number: run events with ``time <= until``; the
          clock finishes at exactly ``until``.
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value (raising if it failed).

        The dispatch loops are :meth:`step` inlined with both queue tiers
        bound to locals: this is the hottest path in every experiment
        (see ``benchmarks/bench_micro.py``).  The heap invariant, the
        descending sort of the run tier, and the no-negative-delay check
        in :meth:`_schedule` together guarantee time never runs
        backwards here.  ``self._now`` is only stored when an observer
        exists (callbacks about to run, or an error about to raise) —
        between empty-callback events nothing can read the clock.
        """
        run_ = self._run
        heap = self._heap
        pop = heapq.heappop

        if until is None:
            when = self._now
            while True:
                if run_:
                    entry = run_[-1]
                    if heap and heap[0] < entry:
                        entry = pop(heap)
                    else:
                        del run_[-1]
                elif heap:
                    if len(heap) > _MIGRATE_MIN:
                        heap.sort(reverse=True)
                        run_.extend(heap)
                        del heap[:]
                        entry = run_.pop()
                    else:
                        entry = pop(heap)
                else:
                    break
                when, _key, event = entry
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    self._now = when
                    for callback in callbacks:
                        if callback is not None:
                            callback(event)
                if not event._ok and not event._defused:
                    self._now = when
                    raise event._value
            self._now = when
            return None

        if isinstance(until, Event):
            stop = until
            if stop.processed:
                if stop.ok:
                    return stop.value
                stop.defuse()
                raise stop.value
            done: list[Event] = []
            stop.callbacks.append(done.append)
            while not done:
                if run_:
                    entry = run_[-1]
                    if heap and heap[0] < entry:
                        entry = pop(heap)
                    else:
                        del run_[-1]
                elif heap:
                    if len(heap) > _MIGRATE_MIN:
                        heap.sort(reverse=True)
                        run_.extend(heap)
                        del heap[:]
                        entry = run_.pop()
                    else:
                        entry = pop(heap)
                else:
                    raise SimulationError(
                        "run(until=event): queue drained before event fired"
                    )
                when, _key, event = entry
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    self._now = when
                    for callback in callbacks:
                        if callback is not None:
                            callback(event)
                if not event._ok and not event._defused:
                    self._now = when
                    raise event._value
            if stop.ok:
                return stop.value
            stop.defuse()
            raise stop.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while True:
            if run_:
                entry = run_[-1]
                if heap and heap[0] < entry:
                    if heap[0][0] > horizon:
                        break
                    entry = pop(heap)
                else:
                    if entry[0] > horizon:
                        break
                    del run_[-1]
            elif heap:
                if heap[0][0] > horizon:
                    break
                if len(heap) > _MIGRATE_MIN:
                    # Only the entries due by the horizon need sorting into
                    # the run tier; the rest stay behind as a (re-heapified)
                    # backlog for a later run() call.  Sorting the due slice
                    # plus an O(n) heapify of the remainder measures faster
                    # than one n-log-n sort of the whole backlog.
                    due = [e for e in heap if e[0] <= horizon]
                    if len(due) < len(heap):
                        heap[:] = [e for e in heap if e[0] > horizon]
                        heapq.heapify(heap)
                    else:
                        del heap[:]
                    due.sort(reverse=True)
                    run_.extend(due)
                    entry = run_.pop()
                else:
                    entry = pop(heap)
            else:
                break
            when, _key, event = entry
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                self._now = when
                for callback in callbacks:
                    if callback is not None:
                        callback(event)
            if not event._ok and not event._defused:
                self._now = when
                raise event._value
        self._now = horizon
        return None

    def run_budgeted(
        self,
        until: Event,
        max_events: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> tuple[Any, int]:
        """Run until ``until`` fires, under an event cap and a time cap.

        The service sandbox's enforcement point: unlike :meth:`run`, this
        loop is built from :meth:`step` (one bounds check per event, the
        hot inlined loops stay untouched) and refuses to dispatch more
        than ``max_events`` events or to advance the clock past
        ``horizon`` simulated seconds, raising
        :class:`~repro.core.errors.BudgetExceeded` instead.  Returns
        ``(value, events_dispatched)`` — the budget actually consumed is
        part of the result so callers can report it.
        """
        events = 0
        while not until.processed:
            when = self.peek()
            if when == INFINITY:
                raise SimulationError(
                    "run_budgeted: queue drained before event fired"
                )
            if horizon is not None and when > horizon:
                raise BudgetExceeded(
                    "sim-time", horizon,
                    f"simulated-time budget exceeded ({horizon:g}s)",
                )
            if max_events is not None and events >= max_events:
                raise BudgetExceeded(
                    "events", max_events,
                    f"event budget exceeded ({max_events} events)",
                )
            self.step()
            events += 1
        if until.ok:
            return until.value, events
        until.defuse()
        raise until.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        queued = len(self._run) + len(self._heap)
        return f"<Engine now={self._now:g} queued={queued}>"
