"""The discrete-event engine: a binary-heap event list and a virtual clock.

Design notes (per the hpc-parallel guide: simple and legible first, then
measured):

* The heap holds ``(time, priority, sequence, event)`` tuples.  The
  monotonically increasing ``sequence`` makes ordering stable and FIFO
  for same-time events, which the resource queues rely on for fairness.
* Priority 0 is reserved for urgent deliveries (interrupts) so that an
  interrupt scheduled "now" beats ordinary events scheduled "now".
* A failed event that nobody defused re-raises at the engine loop:
  errors crash loudly instead of vanishing.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from ..core.errors import SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator
from .rng import RandomStreams

#: Ordinary event priority; interrupts use :data:`PRIORITY_URGENT`.
PRIORITY_NORMAL = 1
PRIORITY_URGENT = 0

#: Value returned by :meth:`Engine.peek` when no events remain.
INFINITY = float("inf")


class Engine:
    """Owns the virtual clock and runs events in time order."""

    def __init__(
        self,
        start_time: float = 0.0,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        #: The process currently executing (for self-interrupt detection).
        self.active_process: Optional[Process] = None
        #: Named random streams shared by everything attached to this
        #: engine.  Substrates that need stochastic behaviour default to
        #: a stream named after themselves, so one master seed fully
        #: determines a run even when callers pass no explicit rng.
        self.streams = streams if streams is not None else RandomStreams(0)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and stepping
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``INFINITY`` if none."""
        return self._queue[0][0] if self._queue else INFINITY

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event fires.

        * ``until`` is ``None``: run to queue exhaustion.
        * ``until`` is a number: run events with ``time <= until``; the
          clock finishes at exactly ``until``.
        * ``until`` is an :class:`Event`: run until it is processed and
          return its value (raising if it failed).

        The dispatch loop is :meth:`step` inlined with the queue and
        ``heappop`` bound to locals: this is the hottest path in every
        experiment (see ``benchmarks/bench_micro.py``), and the heap
        invariant plus the no-negative-delay check in :meth:`_schedule`
        already guarantee time never runs backwards here.
        """
        queue = self._queue
        pop = heapq.heappop

        if until is None:
            while queue:
                when, _priority, _seq, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            stop = until
            if stop.processed:
                if stop.ok:
                    return stop.value
                stop.defuse()
                raise stop.value
            done: list[Event] = []
            stop.callbacks.append(done.append)
            while queue and not done:
                when, _priority, _seq, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            if not done:
                raise SimulationError("run(until=event): queue drained before event fired")
            if stop.ok:
                return stop.value
            stop.defuse()
            raise stop.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        # ``queue[0][0]`` is re-read only after dispatching an event that
        # may have scheduled more work; the common timeout-fire path is a
        # single pop, clock store, and callback call.
        while queue and queue[0][0] <= horizon:
            when, _priority, _seq, event = pop(queue)
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self._now:g} queued={len(self._queue)}>"
