"""A lean discrete-event simulation kernel.

Public surface::

    from repro.sim import Engine, Interrupt

    engine = Engine()

    def worker():
        yield engine.timeout(5)
        return "done"

    proc = engine.process(worker())
    engine.run(until=proc)   # -> "done", engine.now == 5

See :mod:`repro.sim.engine` for the event-loop design and
:mod:`repro.sim.resources` for the contention primitives.
"""

from .engine import Engine, INFINITY
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Interrupt, Timeout
from .monitor import Counter, TimeSeries, sample
from .process import Process, ProcessGenerator
from .resources import Container, ContainerEvent, Request, Resource, Store, StoreEvent
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "ContainerEvent",
    "Counter",
    "Engine",
    "Event",
    "INFINITY",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "RandomStreams",
    "Request",
    "Resource",
    "Store",
    "StoreEvent",
    "TimeSeries",
    "Timeout",
    "sample",
]
