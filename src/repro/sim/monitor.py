"""Measurement instruments: time series, counters, periodic samplers.

Every figure in the paper is either a sweep (scalar per configuration) or
a timeline (series over the run).  :class:`TimeSeries` records stamped
values, :class:`Counter` is a monotone event count with an optional
series, and :func:`sample` runs a probe function on a fixed period —
exactly how the paper's "available FDs" line is drawn.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine
    from .process import Process


class TimeSeries:
    """Time-stamped observations of one quantity."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation; time must be non-decreasing.

        Both coordinates are coerced to plain ``float`` so a series is
        uniformly typed no matter what the probe returned (ints, numpy
        scalars) — a precondition for results that pickle/JSON
        round-trip identically across processes and the result cache.
        """
        time = float(time)
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time went backwards ({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(float(value))

    def at(self, time: float, default: float = 0.0) -> float:
        """Value of the most recent observation at or before ``time``."""
        idx = bisect_right(self.times, time) - 1
        return self.values[idx] if idx >= 0 else default

    def resample(self, times: list[float], default: float = 0.0) -> list[float]:
        """Step-interpolate the series onto ``times``."""
        return [self.at(t, default) for t in times]

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def __eq__(self, other: object) -> bool:
        """Value equality, so result dataclasses holding series compare
        (and therefore pickle round-trips can be asserted) exactly."""
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (self.name == other.name and self.times == other.times
                and self.values == other.values)

    @property
    def last(self) -> float:
        """Most recent value (0.0 if empty)."""
        return self.values[-1] if self.values else 0.0

    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name!r} n={len(self)}>"


class Counter:
    """A monotone event counter with an optional recorded series."""

    __slots__ = ("name", "count", "series", "_engine")

    def __init__(self, engine: "Engine", name: str = "", keep_series: bool = True) -> None:
        self._engine = engine
        self.name = name
        self.count = 0
        self.series: TimeSeries | None = TimeSeries(name) if keep_series else None

    def increment(self, amount: int = 1) -> None:
        """Count ``amount`` occurrences at the current simulation time."""
        self.count += amount
        if self.series is not None:
            self.series.record(self._engine.now, self.count)

    def __int__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name!r} count={self.count}>"


def sample(
    engine: "Engine",
    interval: float,
    probe: Callable[[], float],
    series: TimeSeries,
    until: float | None = None,
) -> "Process":
    """Run ``probe`` every ``interval`` seconds and record into ``series``.

    Records one sample immediately at start.  With ``until`` given, the
    final sample lands *exactly at* ``until`` (the last wait is clipped
    when ``until`` is not a multiple of ``interval``) and the sampler
    never schedules a wake-up past it.
    """
    if interval <= 0:
        raise ValueError(f"sample interval must be > 0, got {interval}")

    def _sampler() -> Any:
        while True:
            series.record(engine.now, probe())
            if until is not None and engine.now >= until:
                return
            delay = interval if until is None else min(interval, until - engine.now)
            yield engine.timeout(delay)

    return engine.process(_sampler(), name=f"sampler:{series.name}")
