"""Named, seeded random streams for reproducible experiments.

Every stochastic element of a simulation (each client's jitter, each
producer's file sizes, …) draws from its *own* stream derived from a
master seed and a stable name.  Adding or removing one client therefore
never perturbs the random sequence seen by the others — the standard
"common random numbers" discipline for comparing disciplines fairly.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def _derive_seed(master: int, name: str) -> int:
    """A stable 64-bit seed from (master, name) — not Python's salted hash()."""
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independent ``random.Random`` instances."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.master_seed, name))
        return self._streams[name]

    def uniform_source(self, name: str):
        """A zero-argument callable producing U[0,1) floats from ``name``'s stream.

        This is the shape :class:`repro.core.backoff.BackoffPolicy` wants.
        """
        return self.stream(name).random

    def names(self) -> Iterator[str]:
        return iter(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.master_seed} streams={len(self._streams)}>"
