"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects; the engine resumes it with the event's value when the event is
processed (or throws the event's exception into it if the event failed).
A :class:`Process` is itself an event, triggered when the generator
returns — so processes can wait on each other, be combined with
``AllOf``/``AnyOf``, and be interrupted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..core.errors import SimulationError
from .events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator inside the simulation.

    The process event succeeds with the generator's return value, or fails
    with its uncaught exception.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or terminated).
        self._target: Event | None = None
        # Kick off at the current simulation time.  Urgent priority so a
        # process interrupted in its creation instant still *starts* before
        # the interrupt lands (throwing into a never-started generator
        # would bypass its try/except entirely).
        bootstrap = Event(engine)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        engine._schedule(bootstrap, priority=0)

    @property
    def is_alive(self) -> bool:
        """True until the generator has returned or raised."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resumption.

        Interrupting a terminated process is an error; interrupting a
        process twice before it runs queues both interrupts.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        if self is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        carrier = Event(self.engine)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._defused = True
        carrier.callbacks.append(self._resume)
        self.engine._schedule(carrier, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:
            return  # a queued interrupt arrived after termination; drop it
        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target may still fire later and must not resume us).
        if self._target is not None and self._target is not event:
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._target = None

        self.engine.active_process = self
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                event.defuse()
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.engine.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.engine.active_process = None
            self.fail(exc)
            return
        self.engine.active_process = None

        if not isinstance(target, Event):
            # Nudge the generator with a clear error at its own yield point.
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
            carrier = Event(self.engine)
            carrier._ok = False
            carrier._value = error
            carrier._defused = True
            carrier.callbacks.append(self._resume)
            self.engine._schedule(carrier)
            return
        if target.engine is not self.engine:
            raise SimulationError("process yielded an event from a different engine")
        if target.processed:
            # Already resolved: resume immediately (next engine step).
            carrier = Event(self.engine)
            carrier._ok = target._ok
            carrier._value = target._value
            if not target.ok:
                target.defuse()
                carrier._defused = True
            carrier.callbacks.append(self._resume)
            self.engine._schedule(carrier)
        else:
            target.callbacks.append(self._resume)
            self._target = target
