"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects; the engine resumes it with the event's value when the event is
processed (or throws the event's exception into it if the event failed).
A :class:`Process` is itself an event, triggered when the generator
returns — so processes can wait on each other, be combined with
``AllOf``/``AnyOf``, and be interrupted.

Hot-path notes: every resume that is not "the target fired normally"
(bootstrap, interrupts, already-resolved yields, bad-yield nudges) goes
through :meth:`Engine.immediate`, which recycles carrier events instead
of allocating; and detaching from a stale wait target (after an
interrupt) tombstones the process' callback slot in O(1) instead of an
O(n) ``list.remove`` — the stale event keeps its place in the event
list and the dispatch loop discards the dead slot when it pops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..core.errors import SimulationError
from .events import Carrier, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running generator inside the simulation.

    The process event succeeds with the generator's return value, or fails
    with its uncaught exception.
    """

    __slots__ = ("generator", "_target", "_target_slot", "_resume_cb", "name")

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or terminated), and the index of our callback in its list —
        #: callback lists only ever append, so the slot stays valid until
        #: the event is processed.
        self._target: Event | None = None
        self._target_slot = 0
        #: The one bound method used for every callback registration, so
        #: tombstoning can compare by identity (and each attach skips a
        #: bound-method allocation).
        self._resume_cb = self._resume
        # Kick off at the current simulation time.  Urgent priority (0) so
        # a process interrupted in its creation instant still *starts*
        # before the interrupt lands (throwing into a never-started
        # generator would bypass its try/except entirely).
        engine.immediate(True, None, self._resume_cb, priority=0)

    @property
    def is_alive(self) -> bool:
        """True until the generator has returned or raised."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resumption.

        Interrupting a terminated process is an error; interrupting a
        process twice before it runs queues both interrupts.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        if self is self.engine.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.engine.immediate(False, Interrupt(cause), self._resume_cb, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:
            return  # a queued interrupt arrived after termination; drop it
        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target may still fire later and must not resume us).
        # O(1): null our slot instead of searching the callback list; the
        # dispatch loop skips tombstones.
        target = self._target
        if target is not None and target is not event:
            stale = target.callbacks
            if stale is not None and stale[self._target_slot] is self._resume_cb:
                stale[self._target_slot] = None
        self._target = None

        ok = event._ok
        value = event._value
        if not ok:
            event.defuse()
        if type(event) is Carrier:
            self.engine._recycle(event)

        self.engine.active_process = self
        try:
            if ok:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(value)
        except StopIteration as stop:
            self.engine.active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.engine.active_process = None
            self.fail(exc)
            return
        self.engine.active_process = None

        if not isinstance(target, Event):
            # Nudge the generator with a clear error at its own yield point.
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
            self.engine.immediate(False, error, self._resume_cb)
            return
        if target.engine is not self.engine:
            raise SimulationError("process yielded an event from a different engine")
        callbacks = target.callbacks
        if callbacks is None:
            # Already resolved: resume immediately (next engine step).
            if not target._ok:
                target.defuse()
            self.engine.immediate(target._ok, target._value, self._resume_cb)
        else:
            self._target_slot = len(callbacks)
            callbacks.append(self._resume_cb)
            self._target = target
