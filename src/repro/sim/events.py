"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-list design (as popularized by
SimPy): an :class:`Event` moves through three states —

* *pending*: created, not yet scheduled;
* *triggered*: given a value (or an exception) and placed on the engine's
  event list;
* *processed*: its callbacks have run.

Processes (see :mod:`repro.sim.process`) suspend by yielding events and
are resumed by the event's callbacks.  All methods are single-threaded by
construction: the engine runs one callback at a time in virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Engine

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()

Callback = Callable[["Event"], None]


class Event:
    """A happening at a point in simulated time.

    Attributes:
        engine: the owning :class:`~repro.sim.engine.Engine`.
        callbacks: functions invoked (with the event) when processed.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callback] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception). Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        If nothing waits on a failed event by the time it is processed the
        engine re-raises the exception (crashing the simulation loudly
        rather than silently dropping an error).  Call :meth:`defuse` to
        opt out.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.engine._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine won't re-raise it."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Negative delays are rejected by the one authoritative check in
    :meth:`Engine._schedule` (every scheduling path funnels through it).
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._schedule(self, delay=delay)


class Carrier(Event):
    """A reusable one-shot event used by :meth:`Engine.immediate`.

    Carriers exist so the hot resume paths (process bootstrap,
    interrupts, already-resolved yields) do not allocate a fresh
    :class:`Event` plus callback list per resumption: the engine keeps a
    free list of consumed carriers and :class:`~repro.sim.process.Process`
    returns them after extracting the payload.  ``_cbs`` is the carrier's
    permanent single-slot callback list, re-armed on every reuse (the
    dispatch loop nulls ``callbacks`` but never mutates the list itself
    for carriers — nothing external ever appends to or tombstones one).
    """

    __slots__ = ("_cbs",)

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        self._cbs: list[Callback | None] = [None]


class ConditionValue:
    """Ordered mapping of event -> value for the events a condition observed."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: dict[Event, Any] = {}

    def __getitem__(self, event: Event) -> Any:
        return self._events[event]

    def __contains__(self, event: Event) -> bool:
        return event in self._events

    def __len__(self) -> int:
        return len(self._events)

    def todict(self) -> dict[Event, Any]:
        return dict(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self._events!r}>"


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`.

    Fails as soon as any observed event fails; otherwise succeeds when
    :meth:`_satisfied` says so, with a :class:`ConditionValue` of every
    event that had triggered by then.
    """

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = tuple(events)
        self._count = 0
        for event in self.events:
            if event.engine is not engine:
                raise SimulationError("condition mixes events from different engines")
        if not self.events:
            self.succeed(ConditionValue())
            return
        for event in self.events:
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _satisfied(self, count: int) -> bool:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # The condition already resolved; swallow late failures so
                # they don't crash the engine (the waiter has moved on).
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied(self._count):
            value = ConditionValue()
            for ev in self.events:
                # Only events that have actually been *processed* count:
                # a Timeout is triggered from birth but hasn't happened yet.
                if ev.processed and ev.ok:
                    value._events[ev] = ev.value
            self.succeed(value)


class AllOf(Condition):
    """Succeeds when every observed event has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count == len(self.events)


class AnyOf(Condition):
    """Succeeds when at least one observed event has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count >= 1


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` is whatever the interrupter supplied; the interrupted
    process decides what it means.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]
