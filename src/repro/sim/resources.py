"""Shared-resource primitives: counting resources, level containers, stores.

These model the contended things in the paper's scenarios:

* :class:`Resource` — N identical slots with a FIFO wait queue (the
  schedd's service threads, a single-threaded web server).
* :class:`Container` — a divisible level between 0 and a capacity (disk
  space).  Offers both blocking ``get``/``put`` and *non-blocking*
  ``try_get``/``try_put``, because kernel tables don't queue you — an
  ``open()`` with no free file descriptors fails immediately with EMFILE.
* :class:`Store` — a FIFO of discrete items (completed files awaiting the
  consumer).

All wait queues are strictly FIFO, using the engine's stable event
ordering; fairness matters because the Ethernet argument is about *not*
starving competitors.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from ..core.errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class Request(Event):
    """A pending claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """``capacity`` identical slots with a FIFO queue of waiters."""

    def __init__(self, engine: "Engine", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot.

        Releasing an ungranted-but-queued request cancels it (useful when
        a waiter times out and walks away).
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("release() of a request this resource never saw") from None

    def cancel(self, request: Request) -> None:
        """Remove a still-queued request (no-op if it was already granted)."""
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class ContainerEvent(Event):
    """A pending blocking ``get``/``put`` against a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, engine: "Engine", amount: float) -> None:
        super().__init__(engine)
        self.amount = amount


class Container:
    """A divisible quantity with level in ``[0, capacity]``.

    Blocking operations queue FIFO per direction; non-blocking
    ``try_get``/``try_put`` succeed or fail immediately.
    """

    def __init__(self, engine: "Engine", capacity: float, init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError(f"container capacity must be > 0, got {capacity}")
        if not (0 <= init <= capacity):
            raise SimulationError(f"init level {init} outside [0, {capacity}]")
        self.engine = engine
        self.capacity = capacity
        self._level = init
        self._getters: Deque[ContainerEvent] = deque()
        self._putters: Deque[ContainerEvent] = deque()

    @property
    def level(self) -> float:
        return self._level

    @property
    def free(self) -> float:
        """Capacity remaining above the current level."""
        return self.capacity - self._level

    # -- non-blocking -------------------------------------------------
    def try_get(self, amount: float) -> bool:
        """Take ``amount`` now if available; return whether it happened."""
        self._check_amount(amount)
        if amount <= self._level:
            self._level -= amount
            self._service_putters()
            return True
        return False

    def try_put(self, amount: float) -> bool:
        """Add ``amount`` now if it fits; return whether it happened."""
        self._check_amount(amount)
        if self._level + amount <= self.capacity:
            self._level += amount
            self._service_getters()
            return True
        return False

    # -- blocking ------------------------------------------------------
    def get(self, amount: float) -> ContainerEvent:
        """Take ``amount``, waiting (FIFO) until the level suffices."""
        self._check_amount(amount)
        if amount > self.capacity:
            raise SimulationError(f"get({amount}) exceeds capacity {self.capacity}")
        ev = ContainerEvent(self.engine, amount)
        self._getters.append(ev)
        self._service_getters()
        return ev

    def put(self, amount: float) -> ContainerEvent:
        """Add ``amount``, waiting (FIFO) until it fits under capacity."""
        self._check_amount(amount)
        if amount > self.capacity:
            raise SimulationError(f"put({amount}) exceeds capacity {self.capacity}")
        ev = ContainerEvent(self.engine, amount)
        self._putters.append(ev)
        self._service_putters()
        return ev

    def cancel(self, event: ContainerEvent) -> None:
        """Withdraw a still-pending blocking get/put."""
        for queue in (self._getters, self._putters):
            try:
                queue.remove(event)
                return
            except ValueError:
                continue

    # -- internals -----------------------------------------------------
    @staticmethod
    def _check_amount(amount: float) -> None:
        if amount < 0:
            raise SimulationError(f"negative amount: {amount}")

    def _service_getters(self) -> None:
        while self._getters and self._getters[0].amount <= self._level:
            ev = self._getters.popleft()
            self._level -= ev.amount
            ev.succeed()
        # Freed headroom may unblock putters in turn; they chase each other.
        if self._putters and self._level + self._putters[0].amount <= self.capacity:
            self._service_putters()

    def _service_putters(self) -> None:
        while self._putters and self._level + self._putters[0].amount <= self.capacity:
            ev = self._putters.popleft()
            self._level += ev.amount
            ev.succeed()
        if self._getters and self._getters[0].amount <= self._level:
            self._service_getters()


class StoreEvent(Event):
    """A pending get/put against a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, engine: "Engine", item: Any = None) -> None:
        super().__init__(engine)
        self.item = item


class Store:
    """A FIFO of discrete items with optional capacity."""

    def __init__(self, engine: "Engine", capacity: float = float("inf")) -> None:
        if capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreEvent] = deque()
        self._putters: Deque[StoreEvent] = deque()

    def put(self, item: Any) -> StoreEvent:
        """Append ``item``, waiting if the store is full."""
        ev = StoreEvent(self.engine, item)
        self._putters.append(ev)
        self._service()
        return ev

    def get(self) -> StoreEvent:
        """Take the oldest item; the event's value is the item."""
        ev = StoreEvent(self.engine)
        self._getters.append(ev)
        self._service()
        return ev

    def cancel(self, event: StoreEvent) -> None:
        """Withdraw a still-pending get/put."""
        for queue in (self._getters, self._putters):
            try:
                queue.remove(event)
                return
            except ValueError:
                continue

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                ev = self._putters.popleft()
                self.items.append(ev.item)
                ev.succeed()
                progressed = True
            if self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True
