"""``ftsh`` — command-line front end for the fault tolerant shell.

Usage::

    ftsh script.ftsh                 # run a script file
    ftsh -c 'try for 5 seconds ...'  # run inline text
    ftsh -t 300 script.ftsh          # bound the whole run to 300 s
    ftsh --parse-only script.ftsh    # syntax check
    ftsh --lint script.ftsh          # static analysis (repro.lint)
    ftsh -D host=xxx script.ftsh     # preset variables
    ftsh --log run.log script.ftsh   # write the execution log

Exit status: 0 on script success, 1 on script failure/timeout,
2 on syntax or usage errors — mirroring the success/failure dichotomy
the language itself exposes.  The check-only modes share the same
contract: ``--parse-only`` and ``--lint`` both exit 2 when the script
does not parse and 0 when it is acceptable; ``--lint`` exits 1 when a
finding reaches error severity (``-W error`` promotes warnings).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.errors import FtshSyntaxError
from .core.shell import Ftsh
from .core.units import duration_seconds


def _parse_timeout(text: str) -> float:
    """Accept ``300``, ``300s``, ``5 minutes``, ``5minutes``."""
    parts = text.split()
    if len(parts) == 2:
        return duration_seconds(float(parts[0]), parts[1])
    stripped = text.strip()
    for idx, char in enumerate(stripped):
        if not (char.isdigit() or char in ".+-"):
            return duration_seconds(float(stripped[:idx]), stripped[idx:])
    return float(stripped)


def _version() -> str:
    """Installed distribution version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftsh",
        description="The fault tolerant shell: retry, alternation and "
        "timeouts as language constructs (Thain & Livny, HPDC 2003).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("script", nargs="?", help="script file to run")
    source.add_argument("-c", "--command", help="run this script text")
    source.add_argument(
        "-i", "--interactive", action="store_true",
        help="start an interactive session (:help for directives)",
    )
    parser.add_argument(
        "-t",
        "--timeout",
        help="bound the whole run (e.g. '300', '5 minutes')",
    )
    parser.add_argument(
        "-D",
        "--define",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="preset a shell variable (repeatable)",
    )
    parser.add_argument(
        "--parse-only", action="store_true", help="syntax-check and exit"
    )
    parser.add_argument(
        "--no-compile", action="store_true",
        help="tree-walk the AST instead of dispatching over compiled "
        "plans (also: $REPRO_NO_COMPILE=1)",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the repro.lint rule pack and exit without running the "
        "script (exit 1 on error-severity findings, 2 on parse errors)",
    )
    parser.add_argument(
        "-W", dest="lint_warnings", choices=("error",), metavar="error",
        help="with --lint: treat warnings as errors",
    )
    parser.add_argument(
        "--format", action="store_true",
        help="print the script in canonical formatting and exit",
    )
    parser.add_argument("--log", help="write the execution log to this file")
    parser.add_argument(
        "--log-level",
        choices=("results", "commands", "trace"),
        default="trace",
        help="log verbosity (paper: 'a log of varying detail')",
    )
    parser.add_argument(
        "--spool-dir",
        metavar="DIR",
        help="keep large variable values in files under DIR instead of memory",
    )
    parser.add_argument(
        "--summary", action="store_true", help="print a log summary to stderr"
    )
    parser.add_argument(
        "--max-parallel",
        type=int,
        metavar="N",
        help="cap simultaneously running forall branches (the paper's "
        "process-creation governor); default unlimited",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print a post-mortem analysis (per-command failure rates, "
        "backoff totals, branch frequencies) to stderr",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace_event JSON of the run (open in "
        "chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--spans",
        metavar="FILE",
        help="write the raw span log as JSONL (read back with "
        "python -m repro.obs.report)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write run metrics in Prometheus text exposition format",
    )
    parser.add_argument(
        "--obs-report",
        action="store_true",
        help="print a telemetry summary (span stats, slowest commands, "
        "backoff totals) to stderr",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a command fault: COMMAND:KIND[:SCHEDULE][:delay=S], "
        "e.g. 'wget:eperm:flaky:p=0.5' or 'sleep:delay:delay=2' "
        "(repeatable; see repro.faults.runtime)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the fault plan's own random stream (default 0)",
    )
    parser.add_argument(
        "--submit",
        metavar="URL",
        help="submit the script to a repro service (python -m "
        "repro.service) instead of running it locally; waits for the "
        "result and keeps the ftsh exit contract (2 on rejection)",
    )
    parser.add_argument(
        "--submit-world",
        choices=("condor", "replica", "buffer"),
        default="condor",
        help="with --submit: which simulated grid world to run against",
    )
    parser.add_argument(
        "--submit-seed",
        type=int,
        default=2003,
        metavar="N",
        help="with --submit: seed for the run's random streams",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_argparser().parse_args(argv)

    if args.interactive:
        from .repl import Repl

        return Repl(compile=False if args.no_compile else None).run()

    if args.command is not None:
        text, name = args.command, "<command-line>"
    else:
        try:
            with open(args.script, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"ftsh: cannot read {args.script}: {exc}", file=sys.stderr)
            return 2
        name = args.script

    try:
        script = Ftsh.parse(text, name)
    except FtshSyntaxError as exc:
        print(f"ftsh: {name}: {exc}", file=sys.stderr)
        return 2
    except RecursionError:
        # Pathologically deep nesting overflows the recursive-descent
        # parser; for the exit-code contract that is a parse error (2),
        # not a crash — for --parse-only, --lint, and plain runs alike.
        print(f"ftsh: {name}: syntax error: nesting too deep to parse",
              file=sys.stderr)
        return 2
    if args.parse_only and not args.lint:
        return 0
    if args.format:
        from .core.pretty import format_script

        sys.stdout.write(format_script(script))
        return 0

    variables = {}
    for item in args.define:
        key, sep, value = item.partition("=")
        if not sep or not key:
            print(f"ftsh: bad -D {item!r}; expected NAME=VALUE", file=sys.stderr)
            return 2
        variables[key] = value

    if args.lint:
        from .lint.engine import LintConfig, has_errors, lint_script

        config = LintConfig(
            warn_as_error=args.lint_warnings == "error",
            assume_defined=frozenset(variables),
        )
        diagnostics = lint_script(script, text, source_name=name,
                                  config=config)
        for diag in diagnostics:
            print(f"ftsh: {diag.gcc()}", file=sys.stderr)
            if diag.suggestion:
                print(f"ftsh:     fix: {diag.suggestion}", file=sys.stderr)
        return 1 if has_errors(diagnostics) else 0

    timeout: Optional[float] = None
    if args.timeout is not None:
        try:
            timeout = _parse_timeout(args.timeout)
        except (ValueError, FtshSyntaxError):
            print(f"ftsh: bad timeout {args.timeout!r}", file=sys.stderr)
            return 2

    if args.submit:
        from .service.client import ServiceClient, ServiceError

        client = ServiceClient(url=args.submit)
        try:
            status = client.submit_script(
                text, variables=variables, world=args.submit_world,
                timeout=timeout, seed=args.submit_seed)
            final = client.wait(status.job_id)
            outcome = client.result(status.job_id)
        except ServiceError as exc:
            print(f"ftsh: {exc}", file=sys.stderr)
            for line in exc.details:
                print(f"ftsh: {line}", file=sys.stderr)
            return 2
        import json as _json

        print(_json.dumps(outcome.to_jsonable(), indent=2, sort_keys=True))
        if final.state != "done":
            print(f"ftsh: job {final.state}: {final.error or ''}",
                  file=sys.stderr)
            return 1
        if (isinstance(outcome.result, dict)
                and not outcome.result.get("success", False)):
            print(f"ftsh: script failed: {outcome.result.get('reason')}",
                  file=sys.stderr)
            return 1
        return 0

    from .core.realruntime import RealDriver
    from .core.shell_log import LOG_COMMANDS, LOG_RESULTS, LOG_TRACE
    from .core.variables import SpoolPolicy

    if args.max_parallel is not None and args.max_parallel < 1:
        print(f"ftsh: bad --max-parallel {args.max_parallel}", file=sys.stderr)
        return 2

    obs = None
    if args.trace or args.spans or args.metrics or args.obs_report:
        from .obs.api import Observability

        obs = Observability()
    if args.inject_fault:
        from .core.errors import SimulationError
        from .faults.runtime import (
            CommandFaultPlan,
            make_faulting_real_driver,
            parse_command_fault,
        )

        try:
            faults = [parse_command_fault(spec) for spec in args.inject_fault]
        except SimulationError as exc:
            print(f"ftsh: bad --inject-fault: {exc}", file=sys.stderr)
            return 2
        plan = CommandFaultPlan(faults, seed=args.fault_seed,
                                horizon=timeout if timeout else 3600.0)
        driver = make_faulting_real_driver(
            plan, max_parallel=args.max_parallel, obs=obs)
    else:
        driver = RealDriver(max_parallel=args.max_parallel, obs=obs)
    level = {"results": LOG_RESULTS, "commands": LOG_COMMANDS,
             "trace": LOG_TRACE}[args.log_level]
    spool = SpoolPolicy(args.spool_dir) if args.spool_dir else None
    shell = Ftsh(driver=driver, spool=spool, log_level=level, obs=obs,
                 compile=False if args.no_compile else None)
    result = shell.run(script, variables=variables, timeout=timeout)

    if args.log:
        try:
            with open(args.log, "w", encoding="utf-8") as handle:
                handle.write(result.log.dump() + "\n")
        except OSError as exc:
            print(f"ftsh: cannot write log {args.log}: {exc}", file=sys.stderr)
    if args.summary:
        print(result.log.summary(), file=sys.stderr)
    if args.analyze:
        from .core.analysis import analyze

        print(analyze(result.log).report(), file=sys.stderr)
    if obs is not None:
        from .obs.exporters import (
            write_chrome_trace,
            write_prometheus,
            write_spans_jsonl,
        )

        exports = (
            (args.trace, write_chrome_trace, obs.tracer),
            (args.spans, write_spans_jsonl, obs.tracer),
            (args.metrics, write_prometheus, obs.metrics),
        )
        for path, writer, source in exports:
            if not path:
                continue
            try:
                writer(source, path)
            except OSError as exc:
                print(f"ftsh: cannot write {path}: {exc}", file=sys.stderr)
        if args.obs_report:
            from .obs.report import render_report

            print(render_report(tracer=obs.tracer, registry=obs.metrics),
                  file=sys.stderr)
    if not result.success and result.reason:
        print(f"ftsh: script failed: {result.reason}", file=sys.stderr)
    return 0 if result.success else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
