"""Figure 7 — Ethernet File Reader (probes turn stalls into deferrals)."""

from conftest import save_report

from repro.experiments.figure6 import render, run_figure6
from repro.experiments.figure7 import run_figure7

DURATION = 900.0


def bench_figure7_ethernet_reader(benchmark, report_dir):
    result = benchmark.pedantic(
        run_figure7,
        kwargs=dict(duration=DURATION),
        iterations=1,
        rounds=1,
    )
    text = render(result)
    save_report(report_dir, "figure7", text)
    print("\n" + text)

    ethernet = result.run
    # "The Ethernet clients are much more effective and suffer from no
    # such hiccups": compare against the Figure 6 run directly.
    aloha = run_figure6(duration=DURATION).run
    assert ethernet.transfers > aloha.transfers
    assert ethernet.collisions <= 2
    assert ethernet.deferrals > 0
