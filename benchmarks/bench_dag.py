"""Extension benchmark: Chimera-style DAG makespan per discipline.

Not one of the paper's figures — it is the workload the paper's §5
motivates scenario 1 with ("systems such as Chimera, which manage large
trees of dependent tasks, dispatching new jobs as old ones complete").
The layer boundaries produce correlated submission bursts past the
schedd's FD cliff; makespan is the price of each discipline.
"""

from conftest import save_report

from repro.clients.base import ALOHA, ETHERNET, FIXED
from repro.experiments.report import render_table
from repro.experiments.scenario_dag import DagParams, run_dag_scenario

#: Burst of 6 x 70 = 420 simultaneous submissions, above the ~365 cliff.
PARAMS = dict(n_users=6, layers=2, width=70, max_inflight=70)
HORIZON = 900.0


def bench_dag_makespan(benchmark, report_dir):
    def run_all():
        return {
            d.name: run_dag_scenario(
                DagParams(discipline=d, horizon=HORIZON, **PARAMS)
            )
            for d in (ETHERNET, ALOHA, FIXED)
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [
        [name, f"{r.makespan:.0f}", r.all_finished,
         f"{r.tasks_done}/{r.tasks_total}", r.submissions_attempted, r.crashes]
        for name, r in results.items()
    ]
    text = render_table(
        ["discipline", "makespan_s", "finished", "tasks", "attempts", "crashes"],
        rows,
    )
    save_report(report_dir, "dag_makespan", text)
    print("\n" + text)

    # Backoff disciplines finish the workflow; fixed never does.
    assert results["ethernet"].all_finished
    assert results["aloha"].all_finished
    assert not results["fixed"].all_finished
    assert results["fixed"].tasks_done < 0.25 * results["fixed"].tasks_total
    # Fixed burns far more submission attempts for far less work.
    assert (
        results["fixed"].submissions_attempted
        > results["ethernet"].submissions_attempted
    )
