"""Shared configuration for the figure benchmarks.

Each ``bench_figureN.py`` regenerates one figure of the paper at a
benchmark-friendly scale and prints the same rows/series the paper
reports (run with ``-s`` to see them, or read the saved reports).

Scales:

* benchmark scale (here): small enough that the whole suite runs in a
  couple of minutes while still showing every qualitative feature;
* full scale: ``python -m repro.experiments.runall --scale full``
  regenerates the figures at the paper's parameters (400-500 clients,
  30-minute windows) — that is what EXPERIMENTS.md records.
"""

import os

import pytest

#: Where rendered figure reports are written (one .txt per figure).
REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def report_dir():
    os.makedirs(REPORT_DIR, exist_ok=True)
    return REPORT_DIR


def save_report(report_dir: str, name: str, text: str) -> None:
    with open(os.path.join(report_dir, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
