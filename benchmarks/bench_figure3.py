"""Figure 3 — Timeline of Ethernet Submitter (carrier sense holds the
FD floor; no crashes; steady submission slope)."""

from conftest import save_report

from repro.experiments.figure2 import render
from repro.experiments.figure3 import run_figure3

N_CLIENTS = 400
DURATION = 900.0
THRESHOLD = 1000


def bench_figure3_ethernet_timeline(benchmark, report_dir):
    result = benchmark.pedantic(
        run_figure3,
        kwargs=dict(n_clients=N_CLIENTS, duration=DURATION,
                    carrier_threshold=THRESHOLD),
        iterations=1,
        rounds=1,
    )
    text = render(result)
    save_report(report_dir, "figure3", text)
    print("\n" + text)

    # "The Ethernet client attempts to preserve a critical value of file
    # descriptors" — the free-FD line hovers near the threshold, never
    # collapsing, and the schedd never crashes.
    fd_after_rampup = result.fd_series.values[2:]
    assert min(fd_after_rampup) >= 0.5 * THRESHOLD
    assert result.run.crashes == 0
    assert result.jobs_series.last > 0
