"""Ablations of the design choices DESIGN.md calls out.

Three knobs, each tied to a sentence of the paper:

* **jitter** — §3: "the problem will not be solved if all clients return
  at the same instant, so some asymmetry or random factor is needed to
  discourage cascading collisions."
* **carrier threshold** — Figure 1's constant 1000: where does the
  protected plateau start and end?
* **exponential vs fixed-interval retry** — what the `every` clause
  would do to the Aloha client under overload.
"""

from conftest import save_report

from repro.clients.base import ETHERNET, Discipline
from repro.core.backoff import BackoffPolicy
from repro.experiments import SubmitParams, run_submission
from repro.experiments.report import render_table

N_CLIENTS = 400
DURATION = 300.0

JITTERED = Discipline(
    "aloha-jitter", BackoffPolicy(jitter_low=1.0, jitter_high=2.0), False
)
SYNCHRONIZED = Discipline(
    "aloha-nojitter", BackoffPolicy(jitter_low=1.0, jitter_high=1.0), False
)
FIXED_INTERVAL = Discipline(
    # a constant 5 s retry pause: no exponential growth at all
    "aloha-fixed5s",
    BackoffPolicy(base=5.0, factor=1.0, ceiling=5.0, jitter_low=1.0, jitter_high=2.0),
    False,
)


def bench_ablation_jitter(benchmark, report_dir):
    """Removing the random factor synchronizes the herd."""

    def run_pair():
        return {
            d.name: run_submission(
                SubmitParams(discipline=d, n_clients=N_CLIENTS, duration=DURATION)
            )
            for d in (JITTERED, SYNCHRONIZED)
        }

    results = benchmark.pedantic(run_pair, iterations=1, rounds=1)
    rows = [
        [name, r.jobs_submitted, r.crashes, r.emfile_failures, r.backoffs]
        for name, r in results.items()
    ]
    text = render_table(
        ["variant", "jobs", "crashes", "emfile", "backoffs"], rows
    )
    save_report(report_dir, "ablation_jitter", text)
    print("\n" + text)

    with_jitter = results["aloha-jitter"]
    without = results["aloha-nojitter"]
    # Cascading collisions: synchronized retries hit EMFILE together.
    assert without.emfile_failures > with_jitter.emfile_failures
    assert without.jobs_submitted <= with_jitter.jobs_submitted


def bench_ablation_carrier_threshold(benchmark, report_dir):
    """Sweep Figure 1's magic constant across the protected plateau."""
    thresholds = (250, 1000, 4000, 7500, 8150)

    def run_sweep():
        return {
            threshold: run_submission(
                SubmitParams(
                    discipline=ETHERNET,
                    n_clients=N_CLIENTS,
                    duration=DURATION,
                    carrier_threshold=threshold,
                )
            )
            for threshold in thresholds
        }

    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    rows = [
        [threshold, r.jobs_submitted, r.crashes, int(min(r.fd_series.values))]
        for threshold, r in results.items()
    ]
    text = render_table(["threshold", "jobs", "crashes", "min free fds"], rows)
    save_report(report_dir, "ablation_threshold", text)
    print("\n" + text)

    # The paper's 1000 sits on the plateau: protected and productive.
    assert results[1000].crashes == 0
    # An absurdly high threshold starves admission below the service
    # concurrency and throughput collapses.
    assert results[8150].jobs_submitted < 0.5 * results[1000].jobs_submitted


def bench_ablation_fixed_interval(benchmark, report_dir):
    """A constant retry pause neither spreads load nor adapts to it."""

    def run_pair():
        return {
            d.name: run_submission(
                SubmitParams(discipline=d, n_clients=N_CLIENTS, duration=DURATION)
            )
            for d in (JITTERED, FIXED_INTERVAL)
        }

    results = benchmark.pedantic(run_pair, iterations=1, rounds=1)
    rows = [
        [name, r.jobs_submitted, r.crashes, r.emfile_failures]
        for name, r in results.items()
    ]
    text = render_table(["variant", "jobs", "crashes", "emfile"], rows)
    save_report(report_dir, "ablation_interval", text)
    print("\n" + text)

    # The fixed interval keeps hammering a down schedd every 5-10 s where
    # the exponential client has long since widened to minutes, so it
    # burns far more failed attempts for at-best-similar throughput.
    fixed = results["aloha-fixed5s"]
    exponential = results["aloha-jitter"]
    assert fixed.emfile_failures + fixed.backoffs > exponential.emfile_failures
