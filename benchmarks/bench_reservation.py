"""Ablation: NeST-style reservations vs Ethernet carrier sense (paper §5).

    "The reader may question whether it is wise to design a system
    without a mechanism for allocating storage space independently of
    data transfer, such as that found in NeST, SRB, and SRM...  Further,
    the actual process of allocation itself may be subject to
    contention."

Reservations make ENOSPC collisions impossible — and move the contended
resource to the allocation RPC.  With a fast allocator that trade wins;
with a slow one, the allocator becomes the bottleneck and the optimistic
carrier-sense client delivers several times the throughput.
"""

from conftest import save_report

from repro.clients.base import ALOHA, ETHERNET
from repro.experiments.report import render_table
from repro.experiments.scenario_buffer import BufferParams, run_buffer
from repro.grid.storage import BufferConfig

N_PRODUCERS = 50
DURATION = 60.0


def bench_reservation_vs_carrier_sense(benchmark, report_dir):
    def run_all():
        fast = BufferConfig(alloc_rpc_time=0.5)
        slow = BufferConfig(alloc_rpc_time=2.0)
        return {
            "ethernet": run_buffer(
                BufferParams(discipline=ETHERNET, n_producers=N_PRODUCERS,
                             duration=DURATION, buffer=fast)
            ),
            "reserved-fast": run_buffer(
                BufferParams(discipline=ALOHA, n_producers=N_PRODUCERS,
                             duration=DURATION, buffer=fast, reserved=True)
            ),
            "reserved-slow": run_buffer(
                BufferParams(discipline=ALOHA, n_producers=N_PRODUCERS,
                             duration=DURATION, buffer=slow, reserved=True)
            ),
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [
        [name, r.files_consumed, r.collisions, r.reservations_denied,
         f"{r.alloc_wait_total:.0f}"]
        for name, r in results.items()
    ]
    text = render_table(
        ["variant", "consumed", "collisions", "denied", "alloc_wait_s"], rows
    )
    save_report(report_dir, "ablation_reservation", text)
    print("\n" + text)

    ethernet = results["ethernet"]
    fast = results["reserved-fast"]
    slow = results["reserved-slow"]
    # Reservations do what they promise: zero collisions.
    assert fast.collisions == 0 and slow.collisions == 0
    # ...but the allocation path is itself heavily contended.
    assert fast.alloc_wait_total > 10 * DURATION
    # A fast allocator competes with carrier sense; a slow one loses badly.
    assert fast.files_consumed >= 0.8 * ethernet.files_consumed
    assert slow.files_consumed < 0.5 * ethernet.files_consumed
