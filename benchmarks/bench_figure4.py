"""Figure 4 — Buffer Throughput (files consumed vs producer count)."""

from conftest import save_report

from repro.experiments.figure4 import render_figure4, run_buffer_sweep

COUNTS = (5, 15, 30, 50)
DURATION = 60.0


def bench_figure4_buffer_throughput(benchmark, report_dir):
    result = benchmark.pedantic(
        run_buffer_sweep,
        kwargs=dict(counts=COUNTS, duration=DURATION),
        iterations=1,
        rounds=1,
    )
    text = render_figure4(result)
    save_report(report_dir, "figure4", text)
    print("\n" + text)

    consumed = result.consumed
    # Ethernet "scales acceptably, falling off only slightly": its worst
    # point stays within half of its best.
    assert min(consumed["ethernet"]) >= 0.5 * max(consumed["ethernet"])
    # Fixed does not scale: heavy load costs it most of its throughput.
    assert consumed["fixed"][-1] <= 0.5 * max(consumed["fixed"])
    # Ordering under heavy load: ethernet >= aloha >= fixed.
    assert consumed["ethernet"][-1] >= consumed["aloha"][-1] >= consumed["fixed"][-1]
