"""Campaign-layer benchmarks: executor dispatch, cache key hashing,
and cold/warm content-addressed cache round-trips.

These are the ``repro.parallel`` counterparts to the engine micro-
benchmarks: they put numbers on the machinery that ``runall --jobs``
and ``--cache-dir`` add around the simulations, so overhead regressions
(hashing, pickling, pool spin-up) show up as numbers.  The end-to-end
serial-vs-parallel campaign timing lives in
``python -m repro.experiments.bench`` / ``BENCH_campaign.json``.
"""

from repro.clients.base import ETHERNET
from repro.experiments.scenario_submit import SubmitParams, run_submission
from repro.parallel.cache import ResultCache, canonical_json
from repro.parallel.executor import CellSpec, run_cells

PARAMS = SubmitParams(discipline=ETHERNET, n_clients=5, duration=5.0,
                      seed=2003)
CELLS = [
    CellSpec(key=f"bench/submit/{seed}", fn=run_submission,
             args=(SubmitParams(discipline=ETHERNET, n_clients=5,
                                duration=5.0, seed=seed),))
    for seed in range(2003, 2007)
]


def bench_cell_dispatch_serial(benchmark):
    """run_cells overhead + four small submission cells, serial."""
    results = benchmark(run_cells, CELLS)
    assert len(results) == 4


def bench_cache_key(benchmark):
    """Canonicalize + hash a full params dataclass into a cache key."""
    cache = ResultCache.__new__(ResultCache)
    cache.fingerprint = "bench-fingerprint"

    key = benchmark(cache.key_for, run_submission, (PARAMS,), {})
    assert len(key) == 64


def bench_canonical_json(benchmark):
    """Dataclass -> canonical JSON (the hashing payload) alone."""
    text = benchmark(canonical_json, PARAMS)
    assert "SubmitParams" in text


def bench_cache_roundtrip(benchmark, tmp_path):
    """Store + reload one pickled scenario result (warm-hit cost)."""
    cache = ResultCache(str(tmp_path))
    result = run_submission(PARAMS)
    key = cache.key_for(run_submission, (PARAMS,), {})
    cache.put(key, result)

    def roundtrip():
        hit, value = cache.get(key)
        return hit, value

    hit, value = benchmark(roundtrip)
    assert hit and value.jobs_submitted == result.jobs_submitted
