"""Figure 1 — Scalability of Job Submission (sweep over submitter counts).

Regenerates the paper's throughput-vs-submitters curves for all three
disciplines and checks the headline shapes: fixed collapses past its
cliff, Aloha degrades but survives, Ethernet holds roughly half of peak.
"""

from conftest import save_report

from repro.experiments.figure1 import render, run_figure1

#: Benchmark-scale sweep: brackets the fixed client's cliff (~375).
COUNTS = (50, 150, 300, 400, 450)
DURATION = 120.0


def bench_figure1_submission_sweep(benchmark, report_dir):
    result = benchmark.pedantic(
        run_figure1,
        kwargs=dict(counts=COUNTS, duration=DURATION),
        iterations=1,
        rounds=1,
    )
    text = render(result)
    save_report(report_dir, "figure1", text)
    print("\n" + text)

    jobs = result.jobs
    # Shape: fixed dies above the cliff...
    assert jobs["fixed"][-1] <= 0.1 * max(jobs["fixed"])
    # ...aloha survives but below ethernet...
    assert 0 < jobs["aloha"][-1] <= jobs["ethernet"][-1]
    # ...ethernet keeps a large fraction of its peak.
    assert jobs["ethernet"][-1] >= 0.35 * max(jobs["ethernet"])
    # No discipline beats the schedd's uncontended peak by magic.
    peak = max(max(row) for row in jobs.values())
    assert jobs["ethernet"][-1] <= peak
