"""Figure 2 — Timeline of Aloha Submitter (400 clients, FD exhaustion,
schedd crash spikes)."""

from conftest import save_report

from repro.experiments.figure2 import render, run_figure2

N_CLIENTS = 400
DURATION = 900.0


def bench_figure2_aloha_timeline(benchmark, report_dir):
    result = benchmark.pedantic(
        run_figure2,
        kwargs=dict(n_clients=N_CLIENTS, duration=DURATION),
        iterations=1,
        rounds=1,
    )
    text = render(result)
    save_report(report_dir, "figure2", text)
    print("\n" + text)

    fd = result.fd_series
    capacity = result.run.params.condor.fd_capacity
    # The initial burst consumes nearly the whole table...
    assert fd.minimum() < 0.1 * capacity
    # ...and schedd crashes spring it back up (broadcast jam spikes).
    assert result.run.crashes >= 2
    assert fd.maximum() >= 0.9 * capacity
    # Jobs keep creeping upward regardless.
    assert result.jobs_series.last > 0
