"""Extension benchmark: end-to-end Kangaroo delivery per discipline.

The paper's Figure 4 measures local buffer throughput; this bench
measures what the user actually wanted — megabytes landed at the remote
archive across a failing WAN — and shows the fixed discipline's thrash
starving even the uploader's local reads.
"""

from conftest import save_report

from repro.clients.base import ALL_DISCIPLINES
from repro.experiments.report import render_table
from repro.experiments.scenario_kangaroo import KangarooParams, run_kangaroo

N_PRODUCERS = 25
DURATION = 300.0


def bench_kangaroo_pipeline(benchmark, report_dir):
    def run_all():
        return {
            d.name: run_kangaroo(
                KangarooParams(discipline=d, n_producers=N_PRODUCERS,
                               duration=DURATION)
            )
            for d in ALL_DISCIPLINES
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [
        [name, f"{r.mb_delivered:.1f}", r.files_delivered, r.collisions,
         r.wan_outages, r.upload_failures, f"{r.backlog_mb:.1f}"]
        for name, r in results.items()
    ]
    text = render_table(
        ["discipline", "delivered_mb", "files", "collisions", "outages",
         "upload_fail", "backlog_mb"],
        rows,
    )
    save_report(report_dir, "kangaroo", text)
    print("\n" + text)

    fixed, aloha, ethernet = (
        results["fixed"], results["aloha"], results["ethernet"]
    )
    # End-to-end delivery: polite disciplines several-fold ahead.
    assert ethernet.mb_delivered >= aloha.mb_delivered * 0.8
    assert aloha.mb_delivered > 2 * fixed.mb_delivered
    # The thrash shows where it belongs: in the collision ledger.
    assert fixed.collisions > 10 * aloha.collisions >= 10 * 0  # noqa: PLR0133
    assert aloha.collisions >= ethernet.collisions
