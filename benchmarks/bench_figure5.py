"""Figure 5 — Buffer Collisions (failed writes vs producer count)."""

from conftest import save_report

from repro.experiments.figure4 import render_figure5, run_buffer_sweep

COUNTS = (5, 15, 30, 50)
DURATION = 60.0


def bench_figure5_buffer_collisions(benchmark, report_dir):
    result = benchmark.pedantic(
        run_buffer_sweep,
        kwargs=dict(counts=COUNTS, duration=DURATION),
        iterations=1,
        rounds=1,
    )
    text = render_figure5(result)
    save_report(report_dir, "figure5", text)
    print("\n" + text)

    collisions = result.collisions
    # Collision ordering at heavy load: fixed >> aloha >= ethernet.
    assert collisions["fixed"][-1] > 5 * collisions["aloha"][-1]
    assert collisions["aloha"][-1] >= collisions["ethernet"][-1]
    # Collisions grow with offered load for the blind disciplines.
    assert collisions["fixed"][-1] > collisions["fixed"][0]
