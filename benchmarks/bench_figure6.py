"""Figure 6 — Aloha File Reader (black-hole stalls cost 60 s each)."""

from conftest import save_report

from repro.experiments.figure6 import render, run_figure6

DURATION = 900.0


def bench_figure6_aloha_reader(benchmark, report_dir):
    result = benchmark.pedantic(
        run_figure6,
        kwargs=dict(duration=DURATION),
        iterations=1,
        rounds=1,
    )
    text = render(result)
    save_report(report_dir, "figure6", text)
    print("\n" + text)

    run = result.run
    # Aloha clients repeatedly fall on the black hole and wait the full
    # sixty seconds (the collisions line of the figure).
    assert run.collisions >= 10
    assert run.transfers > 0
    # No probes exist in the aloha script, so no deferrals.
    assert run.deferrals == 0
    # Time lost to collisions is real: 60 s each out of 3 client-lifetimes.
    assert run.collisions * 60.0 <= 3 * DURATION
