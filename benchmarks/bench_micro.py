"""Micro-benchmarks for the building blocks (measure before optimizing —
the hpc-parallel guide's first rule).

These give wall-clock baselines for the parser, the event engine, the
interpreter round-trip, and the backoff computation, so regressions in
the hot paths show up as numbers rather than as mysteriously slow
figure regenerations.
"""

from repro.clients.base import ETHERNET
from repro.clients.scripts import reader_script
from repro.core.backoff import PAPER_POLICY, BackoffState
from repro.core.parser import parse
from repro.sim import Engine
from repro.simruntime import CommandRegistry, SimFtsh

READER_SCRIPT = reader_script(ETHERNET, ("xxx", "yyy", "zzz"))


def bench_parse_reader_script(benchmark):
    """Parser throughput on the paper's most complex listing."""
    script = benchmark(parse, READER_SCRIPT)
    assert script.body.body


def bench_engine_timeout_churn(benchmark):
    """Raw event throughput: schedule + dispatch 10k timeouts."""

    def churn():
        engine = Engine()
        for _ in range(10_000):
            engine.timeout(1.0)
        engine.run()
        return engine.now

    assert benchmark(churn) == 1.0


def bench_engine_run_horizon(benchmark):
    """The numeric-horizon hot loop: dispatch 10k timeouts up to a
    deadline (the branch the runall figure sweeps live in)."""

    def churn_to_horizon():
        engine = Engine()
        for i in range(10_000):
            engine.timeout(float(i % 100))
        engine.run(until=50.0)
        return engine.now

    assert benchmark(churn_to_horizon) == 50.0


def bench_engine_interrupt_churn(benchmark):
    """Interrupt delivery + waiter detach rate: park 1k processes on one
    shared event, interrupt them all (the O(1)-cancellation hot path)."""

    def churn():
        engine = Engine()
        barrier = engine.event()
        survived = []

        def waiter():
            try:
                yield barrier
            except Exception:
                survived.append(1)

        targets = [engine.process(waiter()) for _ in range(1_000)]

        def storm():
            yield engine.timeout(1.0)
            for target in targets:
                target.interrupt("storm")

        engine.process(storm())
        engine.run()
        return len(survived)

    assert benchmark(churn) == 1_000


def bench_engine_process_pingpong(benchmark):
    """Generator-process switching rate: two processes alternating."""

    def pingpong():
        engine = Engine()

        def ping():
            for _ in range(1_000):
                yield engine.timeout(1.0)

        engine.process(ping())
        engine.process(ping())
        engine.run()
        return engine.now

    assert benchmark(pingpong) == 1000.0


def bench_interpreter_roundtrip(benchmark):
    """Full script execution in virtual time (parse cached)."""
    script = parse("try 3 times\n  probe\nend")

    def run_once():
        engine = Engine()
        registry = CommandRegistry()

        @registry.register("probe")
        def probe(ctx):
            yield ctx.engine.timeout(0.1)
            return 1

        shell = SimFtsh(engine, registry)
        return shell.run(script)

    result = benchmark(run_once)
    assert not result.success  # probe always fails; 3 attempts consumed


def bench_backoff_schedule(benchmark):
    """Cost of computing a full 1000-failure backoff schedule."""

    def schedule():
        state = BackoffState(PAPER_POLICY)
        return sum(state.next_delay(lambda: 0.5) for _ in range(1_000))

    total = benchmark(schedule)
    assert total > 0
