"""Shim so `python setup.py develop` works offline (no wheel package).

`pip install -e .` is the preferred path when build tooling is available;
this file only delegates to the pyproject.toml configuration.
"""
from setuptools import setup

setup()
